// Direct unit tests for GroupIndexCache and IndexShape (elsewhere only
// exercised through the engine).
#include <gtest/gtest.h>

#include "solap/index/index_cache.h"

namespace solap {
namespace {

IndexShape Shape(std::vector<std::string> levels,
                 PatternKind kind = PatternKind::kSubstring) {
  IndexShape s;
  s.kind = kind;
  for (const std::string& level : levels) {
    s.positions.push_back(LevelRef{"symbol", level});
  }
  return s;
}

std::shared_ptr<InvertedIndex> MakeIndex(const IndexShape& shape,
                                         bool complete,
                                         const std::string& sig = "") {
  auto idx = std::make_shared<InvertedIndex>(shape, complete);
  idx->set_constraint_sig(sig);
  idx->AddSid({0, 0}, 1);
  return idx;
}

TEST(IndexShapeTest, CanonicalStringAndExtension) {
  IndexShape s2 = Shape({"symbol", "group"});
  EXPECT_EQ(s2.CanonicalString(),
            "SUBSTRING[symbol@symbol,symbol@group,]");
  IndexShape right = s2.ExtendedRight({"symbol", "symbol"});
  ASSERT_EQ(right.size(), 3u);
  EXPECT_EQ(right.positions[2].level, "symbol");
  IndexShape left = s2.ExtendedLeft({"symbol", "supergroup"});
  EXPECT_EQ(left.positions[0].level, "supergroup");
  EXPECT_EQ(left.positions[1].level, "symbol");
  // Kind participates in identity.
  IndexShape sub = Shape({"symbol", "group"}, PatternKind::kSubsequence);
  EXPECT_NE(sub.CanonicalString(), s2.CanonicalString());
  EXPECT_FALSE(sub == s2);
}

TEST(IndexCacheTest, FindIsExactOnShapeAndSignature) {
  GroupIndexCache cache;
  IndexShape shape = Shape({"symbol", "symbol"});
  EXPECT_EQ(cache.Find(shape, ""), nullptr);
  auto complete = MakeIndex(shape, true);
  auto filtered = MakeIndex(shape, false, "p0,p0,");
  cache.Insert(complete);
  cache.Insert(filtered);
  EXPECT_EQ(cache.Find(shape, ""), complete);
  EXPECT_EQ(cache.Find(shape, "p0,p0,"), filtered);
  EXPECT_EQ(cache.Find(shape, "p0,p1,"), nullptr);
  EXPECT_EQ(cache.Find(Shape({"symbol", "group"}), ""), nullptr);
  EXPECT_EQ(cache.entries().size(), 2u);
}

TEST(IndexCacheTest, FindUsableFallsBackToComplete) {
  GroupIndexCache cache;
  IndexShape shape = Shape({"symbol", "symbol"});
  auto complete = MakeIndex(shape, true);
  cache.Insert(complete);
  // No exact signature match: the complete index is a usable superset.
  EXPECT_EQ(cache.FindUsable(shape, "p0,p0,"), complete);
  // But a filtered index never substitutes for a different signature.
  GroupIndexCache cache2;
  cache2.Insert(MakeIndex(shape, false, "p0,p0,"));
  EXPECT_EQ(cache2.FindUsable(shape, "p0,p1,"), nullptr);
  EXPECT_NE(cache2.FindUsable(shape, "p0,p0,"), nullptr);
}

TEST(IndexCacheTest, InsertReplacesSameKey) {
  GroupIndexCache cache;
  IndexShape shape = Shape({"symbol", "symbol"});
  auto first = MakeIndex(shape, true);
  cache.Insert(first);
  auto second = MakeIndex(shape, true);
  second->AddSid({1, 1}, 2);
  cache.Insert(second);
  EXPECT_EQ(cache.entries().size(), 1u);
  EXPECT_EQ(cache.Find(shape, ""), second);
}

TEST(IndexCacheTest, TotalBytesAndClear) {
  GroupIndexCache cache;
  cache.Insert(MakeIndex(Shape({"symbol"}), true));
  cache.Insert(MakeIndex(Shape({"symbol", "symbol"}), true));
  EXPECT_GT(cache.TotalBytes(), 0u);
  cache.Clear();
  EXPECT_EQ(cache.entries().size(), 0u);
  EXPECT_EQ(cache.TotalBytes(), 0u);
}

}  // namespace
}  // namespace solap
