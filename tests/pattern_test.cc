// Unit tests for pattern templates and the matcher: substring/subsequence
// semantics, repeated-symbol consistency, slice restrictions, predicates.
#include <gtest/gtest.h>

#include "paper_fixtures.h"
#include "solap/pattern/matcher.h"
#include "solap/seq/sequence_query_engine.h"

namespace solap {
namespace {

using testing::Fig8Hierarchies;
using testing::Fig8RawGroups;

PatternTemplate MakeTemplate(PatternKind kind,
                             std::vector<std::string> symbols,
                             std::vector<PatternDim> dims) {
  auto t = PatternTemplate::Make(kind, std::move(symbols), std::move(dims));
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return *std::move(t);
}

PatternDim Dim(const std::string& symbol,
               std::vector<std::string> fixed = {}) {
  return PatternDim{symbol, {"symbol", "symbol"}, std::move(fixed), ""};
}

TEST(PatternTemplateTest, StructureOfXYYX) {
  PatternTemplate t = MakeTemplate(PatternKind::kSubstring,
                                   {"X", "Y", "Y", "X"},
                                   {Dim("X"), Dim("Y")});
  EXPECT_EQ(t.num_positions(), 4u);
  EXPECT_EQ(t.num_dims(), 2u);
  EXPECT_EQ(t.dim_of(0), 0);
  EXPECT_EQ(t.dim_of(1), 1);
  EXPECT_EQ(t.dim_of(2), 1);
  EXPECT_EQ(t.dim_of(3), 0);
  EXPECT_EQ(t.first_position_of(0), 0);
  EXPECT_EQ(t.first_position_of(1), 1);
  EXPECT_TRUE(t.HasRepeatedSymbols());
  EXPECT_FALSE(t.HasRestrictedDims());
}

TEST(PatternTemplateTest, ValidationErrors) {
  EXPECT_FALSE(
      PatternTemplate::Make(PatternKind::kSubstring, {}, {Dim("X")}).ok());
  // Symbol without declaration.
  EXPECT_FALSE(PatternTemplate::Make(PatternKind::kSubstring, {"X", "Z"},
                                     {Dim("X")})
                   .ok());
  // Declared dimension never used.
  EXPECT_FALSE(PatternTemplate::Make(PatternKind::kSubstring, {"X"},
                                     {Dim("X"), Dim("Y")})
                   .ok());
}

TEST(PatternTemplateTest, DimCodesProjection) {
  PatternTemplate t = MakeTemplate(PatternKind::kSubstring,
                                   {"X", "Y", "Y", "X"},
                                   {Dim("X"), Dim("Y")});
  PatternKey positions = {7, 3, 3, 7};
  PatternKey dims = t.DimCodesOf(positions);
  ASSERT_EQ(dims.size(), 2u);
  EXPECT_EQ(dims[0], 7u);
  EXPECT_EQ(dims[1], 3u);
}

class MatcherTest : public ::testing::Test {
 protected:
  MatcherTest() : set_(Fig8RawGroups()), reg_(Fig8Hierarchies()) {}

  BoundPattern Bind(const PatternTemplate* t) {
    auto bp = BoundPattern::Bind(t, &set_->groups()[0], *set_, reg_.get(),
                                 nullptr, {});
    EXPECT_TRUE(bp.ok()) << bp.status().ToString();
    return *std::move(bp);
  }

  // All occurrences of `t` in sequence s as flat position lists.
  std::vector<std::vector<uint32_t>> Occurrences(const BoundPattern& bp,
                                                 Sid s) {
    std::vector<std::vector<uint32_t>> out;
    bp.ForEachOccurrence(s, [&](const uint32_t* idx) {
      out.emplace_back(idx, idx + bp.tmpl().num_positions());
      return true;
    });
    return out;
  }

  Code CodeOfStation(const std::string& name) {
    return set_->raw_dictionary().Lookup(name);
  }

  std::shared_ptr<SequenceGroupSet> set_;
  std::shared_ptr<HierarchyRegistry> reg_;
};

TEST_F(MatcherTest, SubstringOccurrenceEnumeration) {
  // (X, Y) over s1 = <G,P,P,W,W,P>: five adjacent pairs.
  PatternTemplate t = MakeTemplate(PatternKind::kSubstring, {"X", "Y"},
                                   {Dim("X"), Dim("Y")});
  BoundPattern bp = Bind(&t);
  auto occ = Occurrences(bp, 0);
  ASSERT_EQ(occ.size(), 5u);
  EXPECT_EQ(occ[0], (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(occ[4], (std::vector<uint32_t>{4, 5}));
}

TEST_F(MatcherTest, RepeatedSymbolEqualityPruning) {
  // (X, X) matches only adjacent equal pairs: s1 has (P,P) and (W,W).
  PatternTemplate t =
      MakeTemplate(PatternKind::kSubstring, {"X", "X"}, {Dim("X")});
  BoundPattern bp = Bind(&t);
  auto occ = Occurrences(bp, 0);
  ASSERT_EQ(occ.size(), 2u);
  EXPECT_EQ(occ[0], (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(occ[1], (std::vector<uint32_t>{3, 4}));
  // s4 = <W,C,D,W> has none.
  EXPECT_TRUE(Occurrences(bp, 3).empty());
}

TEST_F(MatcherTest, RoundTripTemplateXYYX) {
  PatternTemplate t = MakeTemplate(PatternKind::kSubstring,
                                   {"X", "Y", "Y", "X"},
                                   {Dim("X"), Dim("Y")});
  BoundPattern bp = Bind(&t);
  // s1 = <G,P,P,W,W,P>: only (P,W,W,P) at positions 2..5.
  auto occ1 = Occurrences(bp, 0);
  ASSERT_EQ(occ1.size(), 1u);
  EXPECT_EQ(occ1[0], (std::vector<uint32_t>{2, 3, 4, 5}));
  // s2 = <P,W,W,P> matches whole; s3 too short; s4 = <W,C,D,W> needs C == D.
  EXPECT_EQ(Occurrences(bp, 1).size(), 1u);
  EXPECT_TRUE(Occurrences(bp, 2).empty());
  EXPECT_TRUE(Occurrences(bp, 3).empty());
}

TEST_F(MatcherTest, FixedDimRestriction) {
  PatternTemplate t = MakeTemplate(
      PatternKind::kSubstring, {"X", "Y"},
      {Dim("X", {"Pentagon"}), Dim("Y")});
  BoundPattern bp = Bind(&t);
  // s1: pairs starting at Pentagon: (P,P) at 1, (P,W) at 2 — and position 5
  // is the final P with no successor.
  auto occ = Occurrences(bp, 0);
  ASSERT_EQ(occ.size(), 2u);
  EXPECT_EQ(occ[0][0], 1u);
  EXPECT_EQ(occ[1][0], 2u);
}

TEST_F(MatcherTest, UnknownSliceLabelMatchesNothing) {
  PatternTemplate t = MakeTemplate(PatternKind::kSubstring, {"X", "Y"},
                                   {Dim("X", {"Atlantis"}), Dim("Y")});
  BoundPattern bp = Bind(&t);
  for (Sid s = 0; s < 4; ++s) EXPECT_TRUE(Occurrences(bp, s).empty());
}

TEST_F(MatcherTest, DistrictLevelMatching) {
  // (X, X) at district level: s4 = <W,C,D,W> -> <D20,D10,D30,D20> none;
  // s1 = <G,P,P,W,W,P> -> <D20,D10,D10,D20,D20,D10> has (D10,D10), (D20,D20).
  PatternDim d{"X", {"symbol", "district"}, {}, ""};
  PatternTemplate t =
      MakeTemplate(PatternKind::kSubstring, {"X", "X"}, {d});
  BoundPattern bp = Bind(&t);
  EXPECT_EQ(Occurrences(bp, 0).size(), 2u);
  EXPECT_TRUE(Occurrences(bp, 3).empty());
}

TEST_F(MatcherTest, SubsequenceEnumeration) {
  // SUBSEQUENCE(X, X) on s4 = <W,C,D,W>: only (W,...,W) = indices {0,3}.
  PatternTemplate t =
      MakeTemplate(PatternKind::kSubsequence, {"X", "X"}, {Dim("X")});
  BoundPattern bp = Bind(&t);
  auto occ = Occurrences(bp, 3);
  ASSERT_EQ(occ.size(), 1u);
  EXPECT_EQ(occ[0], (std::vector<uint32_t>{0, 3}));
  // s1 = <G,P,P,W,W,P>: pairs of equal symbols among P@{1,2,5}, W@{3,4}:
  // (1,2),(1,5),(2,5),(3,4) = 4 occurrences.
  EXPECT_EQ(Occurrences(bp, 0).size(), 4u);
}

TEST_F(MatcherTest, ContainsConcreteSubstringAndSubsequence) {
  PatternTemplate sub = MakeTemplate(PatternKind::kSubstring, {"X", "Y"},
                                     {Dim("X"), Dim("Y")});
  BoundPattern bp = Bind(&sub);
  PatternKey pw = {CodeOfStation("Pentagon"), CodeOfStation("Wheaton")};
  PatternKey wd = {CodeOfStation("Wheaton"), CodeOfStation("Deanwood")};
  EXPECT_TRUE(bp.ContainsConcrete(0, pw));
  EXPECT_FALSE(bp.ContainsConcrete(3, pw));
  EXPECT_FALSE(bp.ContainsConcrete(3, wd));  // W..D not adjacent in s4

  PatternTemplate sseq = MakeTemplate(PatternKind::kSubsequence, {"X", "Y"},
                                      {Dim("X"), Dim("Y")});
  BoundPattern bps = Bind(&sseq);
  EXPECT_TRUE(bps.ContainsConcrete(3, wd));  // subsequence: W then D
}

TEST_F(MatcherTest, TemplateTooLongIsRejected) {
  std::vector<std::string> symbols(kMaxTemplatePositions + 1, "X");
  auto t = PatternTemplate::Make(PatternKind::kSubstring, symbols, {Dim("X")});
  ASSERT_TRUE(t.ok());
  auto bp = BoundPattern::Bind(&*t, &set_->groups()[0], *set_, reg_.get(),
                               nullptr, {});
  EXPECT_FALSE(bp.ok());
}

class PredicateMatchTest : public ::testing::Test {
 protected:
  PredicateMatchTest()
      : table_(testing::Fig8Table()), reg_(Fig8Hierarchies()) {
    SequenceSpec spec;
    spec.cluster_by = {{"card-id", "card-id"}};
    spec.sequence_by = "time";
    SequenceQueryEngine sqe(reg_.get());
    auto set = sqe.Build(*table_, spec);
    EXPECT_TRUE(set.ok());
    set_ = *set;
  }

  std::shared_ptr<EventTable> table_;
  std::shared_ptr<HierarchyRegistry> reg_;
  std::shared_ptr<SequenceGroupSet> set_;
};

TEST_F(PredicateMatchTest, InOutPredicateFiltersOccurrences) {
  // Q3's predicate: x1.action = "in" AND y1.action = "out".
  PatternDim dx{"X", {"location", "station"}, {}, ""};
  PatternDim dy{"Y", {"location", "station"}, {}, ""};
  auto t = PatternTemplate::Make(PatternKind::kSubstring, {"X", "Y"},
                                 {dx, dy});
  ASSERT_TRUE(t.ok());
  ExprPtr pred = Expr::And(
      Expr::Eq(Expr::PCol("x1", "action"), Expr::Lit(Value::String("in"))),
      Expr::Eq(Expr::PCol("y1", "action"), Expr::Lit(Value::String("out"))));
  auto bp = BoundPattern::Bind(&*t, &set_->groups()[0], *set_, reg_.get(),
                               pred, {"x1", "y1"});
  ASSERT_TRUE(bp.ok()) << bp.status().ToString();
  // Card 1012 = <Clarendon(in), Pentagon(out)>: exactly one valid pair.
  // Find its sid by length 2.
  Sid sid = 0;
  for (Sid s = 0; s < 4; ++s) {
    if (set_->groups()[0].length(s) == 2) sid = s;
  }
  int count = 0;
  bp->ForEachOccurrence(sid, [&](const uint32_t*) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
}

TEST_F(PredicateMatchTest, PredicateRequiresMatchingPlaceholderArity) {
  PatternDim dx{"X", {"location", "station"}, {}, ""};
  auto t = PatternTemplate::Make(PatternKind::kSubstring, {"X", "X"}, {dx});
  ASSERT_TRUE(t.ok());
  ExprPtr pred =
      Expr::Eq(Expr::PCol("x1", "action"), Expr::Lit(Value::String("in")));
  auto bp = BoundPattern::Bind(&*t, &set_->groups()[0], *set_, reg_.get(),
                               pred, {"x1"});  // needs 2 placeholders
  EXPECT_FALSE(bp.ok());
}

TEST_F(PredicateMatchTest, PredicateRejectedOnRawGroups) {
  auto raw = Fig8RawGroups();
  PatternDim dx{"X", {"symbol", "symbol"}, {}, ""};
  auto t = PatternTemplate::Make(PatternKind::kSubstring, {"X"}, {dx});
  ASSERT_TRUE(t.ok());
  ExprPtr pred =
      Expr::Eq(Expr::PCol("x1", "action"), Expr::Lit(Value::String("in")));
  auto bp = BoundPattern::Bind(&*t, &raw->groups()[0], *raw, reg_.get(),
                               pred, {"x1"});
  EXPECT_FALSE(bp.ok());
}

}  // namespace
}  // namespace solap
