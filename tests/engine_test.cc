// End-to-end engine tests against the paper's worked examples:
//  - query Q3 (Fig. 11/12): 2D S-cuboid with the in/out matching predicate;
//  - query Q1 (Fig. 3): the round-trip (X,Y,Y,X) cuboid;
//  - the §3.4 non-summarizability counter-example;
//  - cell restrictions, aggregates, caches, online aggregation and
//    incremental update.
#include <gtest/gtest.h>

#include "paper_fixtures.h"
#include "solap/engine/engine.h"
#include "solap/engine/operations.h"

namespace solap {
namespace {

using testing::Fig8Hierarchies;
using testing::Fig8RawGroups;
using testing::Fig8Table;

// Finds the value of the cell whose per-dimension labels equal `labels`;
// -1 if absent.
double CellByLabels(const SCuboid& c, const std::vector<std::string>& labels) {
  for (const auto& [key, cell] : c.cells()) {
    bool match = key.size() == labels.size();
    for (size_t d = 0; match && d < key.size(); ++d) {
      match = c.LabelOf(d, key[d]) == labels[d];
    }
    if (match) return cell.Value(c.agg());
  }
  return -1.0;
}

ExprPtr InOutPredicate(const std::vector<std::pair<std::string, std::string>>&
                           placeholder_actions) {
  ExprPtr e;
  for (const auto& [ph, action] : placeholder_actions) {
    ExprPtr term = Expr::Eq(Expr::PCol(ph, "action"),
                            Expr::Lit(Value::String(action)));
    e = e ? Expr::And(e, term) : term;
  }
  return e;
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : table_(Fig8Table()),
        reg_(Fig8Hierarchies()),
        engine_(table_.get(), reg_.get()) {}

  // Q3 (paper Fig. 11): SUBSTRING(X, Y) at station level with
  // LEFT-MAXIMALITY(x1, y1) WITH x1.action = "in" AND y1.action = "out".
  CuboidSpec Q3() {
    CuboidSpec s;
    s.seq.cluster_by = {{"card-id", "card-id"}};
    s.seq.sequence_by = "time";
    s.symbols = {"X", "Y"};
    s.dims = {PatternDim{"X", {"location", "station"}, {}, ""},
              PatternDim{"Y", {"location", "station"}, {}, ""}};
    s.placeholders = {"x1", "y1"};
    s.predicate = InOutPredicate({{"x1", "in"}, {"y1", "out"}});
    return s;
  }

  // Q1's CUBOID BY part (Fig. 3): SUBSTRING(X, Y, Y, X) with the
  // in/out/in/out matching predicate.
  CuboidSpec Q1() {
    CuboidSpec s = Q3();
    s.symbols = {"X", "Y", "Y", "X"};
    s.placeholders = {"x1", "y1", "y2", "x2"};
    s.predicate = InOutPredicate(
        {{"x1", "in"}, {"y1", "out"}, {"y2", "in"}, {"x2", "out"}});
    return s;
  }

  std::shared_ptr<EventTable> table_;
  std::shared_ptr<HierarchyRegistry> reg_;
  SOlapEngine engine_;
};

TEST_F(EngineTest, Q3ReproducesFigure12WithBothStrategies) {
  for (ExecStrategy strategy :
       {ExecStrategy::kCounterBased, ExecStrategy::kInvertedIndex}) {
    SOlapEngine engine(table_.get(), reg_.get());
    auto r = engine.Execute(Q3(), strategy);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    const SCuboid& c = **r;
    EXPECT_EQ(CellByLabels(c, {"Clarendon", "Pentagon"}), 1);
    EXPECT_EQ(CellByLabels(c, {"Deanwood", "Wheaton"}), 1);
    EXPECT_EQ(CellByLabels(c, {"Glenmont", "Pentagon"}), 1);
    EXPECT_EQ(CellByLabels(c, {"Pentagon", "Wheaton"}), 2);
    EXPECT_EQ(CellByLabels(c, {"Wheaton", "Clarendon"}), 1);
    EXPECT_EQ(CellByLabels(c, {"Wheaton", "Pentagon"}), 2);
    // (Pentagon,Pentagon) and (Wheaton,Wheaton) fail the in/out predicate.
    EXPECT_EQ(CellByLabels(c, {"Pentagon", "Pentagon"}), -1);
    EXPECT_EQ(CellByLabels(c, {"Wheaton", "Wheaton"}), -1);
    EXPECT_EQ(c.num_cells(), 6u);
  }
}

TEST_F(EngineTest, Q1RoundTripCuboid) {
  auto r = engine_.Execute(Q1(), ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Both s1 and s2 contain (Pentagon,Wheaton,Wheaton,Pentagon) with valid
  // in/out/in/out actions (Fig. 14's list {s1, s2}). The cuboid is keyed by
  // the two pattern *dimensions* (X, Y) = (Pentagon, Wheaton).
  EXPECT_EQ(CellByLabels(**r, {"Pentagon", "Wheaton"}), 2);
  EXPECT_EQ((*r)->num_cells(), 1u);
}

TEST_F(EngineTest, CounterBasedAndInvertedIndexAgreeOnQ1) {
  auto cb = engine_.Execute(Q1(), ExecStrategy::kCounterBased);
  ASSERT_TRUE(cb.ok());
  SOlapEngine engine2(table_.get(), reg_.get());
  auto ii = engine2.Execute(Q1(), ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(ii.ok());
  EXPECT_EQ((*cb)->num_cells(), (*ii)->num_cells());
  for (const auto& [key, cell] : (*cb)->cells()) {
    EXPECT_EQ((*ii)->CellAt(key).count, cell.count);
  }
}

// §3.4: the DE-TAIL of SUBSTRING(X,Y,Z) on s3 = <P,W,P,W,G> cannot be
// computed by aggregating the finer cuboid (c4 = 1, but c1 + c3 = 2).
TEST_F(EngineTest, NonSummarizabilityCounterExample) {
  auto set = std::make_shared<SequenceGroupSet>("symbol");
  SequenceGroup& g = set->GroupFor({});
  std::vector<Code> s3;
  for (const char* n :
       {"Pentagon", "Wheaton", "Pentagon", "Wheaton", "Glenmont"}) {
    s3.push_back(set->raw_dictionary().GetOrAdd(n));
  }
  g.AddSequence(s3);
  SOlapEngine engine(set, nullptr);

  CuboidSpec xyz;
  xyz.symbols = {"X", "Y", "Z"};
  xyz.dims = {PatternDim{"X", {"symbol", "symbol"}, {}, ""},
              PatternDim{"Y", {"symbol", "symbol"}, {}, ""},
              PatternDim{"Z", {"symbol", "symbol"}, {}, ""}};
  auto fine = engine.Execute(xyz);
  ASSERT_TRUE(fine.ok()) << fine.status().ToString();
  EXPECT_EQ(CellByLabels(**fine, {"Pentagon", "Wheaton", "Pentagon"}), 1);
  EXPECT_EQ(CellByLabels(**fine, {"Wheaton", "Pentagon", "Wheaton"}), 1);
  EXPECT_EQ(CellByLabels(**fine, {"Pentagon", "Wheaton", "Glenmont"}), 1);
  EXPECT_EQ((*fine)->num_cells(), 3u);

  auto detailed = ops::DeTail(xyz);
  ASSERT_TRUE(detailed.ok());
  auto coarse = engine.Execute(*detailed);
  ASSERT_TRUE(coarse.ok());
  // Correct c4 = 1; summing the two finer cells would give the wrong 2.
  EXPECT_EQ(CellByLabels(**coarse, {"Pentagon", "Wheaton"}), 1);
}

TEST_F(EngineTest, CellRestrictionsOnAabaa) {
  // Paper §3.2(5b): pattern (a,a) against <a,a,b,a,a>.
  auto set = std::make_shared<SequenceGroupSet>("symbol");
  SequenceGroup& g = set->GroupFor({});
  Code a = set->raw_dictionary().GetOrAdd("a");
  Code b = set->raw_dictionary().GetOrAdd("b");
  g.AddSequence(std::vector<Code>{a, a, b, a, a});
  SOlapEngine engine(set, nullptr);

  CuboidSpec spec;
  spec.symbols = {"X", "X"};
  spec.dims = {PatternDim{"X", {"symbol", "symbol"}, {}, ""}};

  spec.restriction = CellRestriction::kLeftMaxMatchedGo;
  auto matched = engine.Execute(spec);
  ASSERT_TRUE(matched.ok());
  EXPECT_EQ(CellByLabels(**matched, {"a"}), 1);  // first match only

  spec.restriction = CellRestriction::kAllMatchedGo;
  auto all = engine.Execute(spec);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(CellByLabels(**all, {"a"}), 2);  // both occurrences

  spec.restriction = CellRestriction::kLeftMaxDataGo;
  auto data = engine.Execute(spec);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(CellByLabels(**data, {"a"}), 1);  // whole sequence once
  (void)b;
}

TEST_F(EngineTest, SumAggregationOverMatchedAndWholeContent) {
  // SUM(amount) over SUBSTRING(X, Y): matched-go sums the two matched
  // events; data-go sums the whole sequence.
  CuboidSpec spec = Q3();
  spec.agg = AggKind::kSum;
  spec.measure = "amount";
  auto matched = engine_.Execute(spec, ExecStrategy::kCounterBased);
  ASSERT_TRUE(matched.ok()) << matched.status().ToString();
  // Card 1012: <Clarendon(in,0), Pentagon(out,-2)>: sum = -2.
  EXPECT_EQ(CellByLabels(**matched, {"Clarendon", "Pentagon"}), -2);

  CuboidSpec whole = spec;
  whole.restriction = CellRestriction::kLeftMaxDataGo;
  auto data = engine_.Execute(whole, ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(data.ok());
  // data-go assigns the whole sequence: -2 for the 2-event sequence; for
  // s1 (6 events with 3 "out" at -2 each) a (Glenmont,Pentagon) match
  // sums -6.
  EXPECT_EQ(CellByLabels(**data, {"Clarendon", "Pentagon"}), -2);
  EXPECT_EQ(CellByLabels(**data, {"Glenmont", "Pentagon"}), -6);
}

TEST_F(EngineTest, AvgMinMaxAggregates) {
  CuboidSpec spec = Q3();
  spec.agg = AggKind::kAvg;
  spec.measure = "amount";
  auto avg = engine_.Execute(spec);
  ASSERT_TRUE(avg.ok());
  // (Pentagon, Wheaton): two sequences each contributing -2 -> avg -2.
  EXPECT_EQ(CellByLabels(**avg, {"Pentagon", "Wheaton"}), -2);
  spec.agg = AggKind::kMin;
  auto mn = engine_.Execute(spec);
  ASSERT_TRUE(mn.ok());
  EXPECT_EQ(CellByLabels(**mn, {"Pentagon", "Wheaton"}), -2);
  spec.agg = AggKind::kMax;
  auto mx = engine_.Execute(spec);
  ASSERT_TRUE(mx.ok());
  EXPECT_EQ(CellByLabels(**mx, {"Pentagon", "Wheaton"}), -2);
}

TEST_F(EngineTest, MeasureValidation) {
  CuboidSpec no_measure = Q3();
  no_measure.agg = AggKind::kSum;
  EXPECT_FALSE(engine_.Execute(no_measure).ok());
  CuboidSpec bad_measure = Q3();
  bad_measure.agg = AggKind::kSum;
  bad_measure.measure = "location";
  EXPECT_FALSE(engine_.Execute(bad_measure).ok());

  auto raw = Fig8RawGroups();
  SOlapEngine raw_engine(raw, reg_.get());
  CuboidSpec raw_sum;
  raw_sum.symbols = {"X"};
  raw_sum.dims = {PatternDim{"X", {"symbol", "symbol"}, {}, ""}};
  raw_sum.agg = AggKind::kSum;
  raw_sum.measure = "amount";
  EXPECT_FALSE(raw_engine.Execute(raw_sum).ok());
}

TEST_F(EngineTest, RepositoryServesRepeatedQueries) {
  auto first = engine_.Execute(Q3());
  ASSERT_TRUE(first.ok());
  uint64_t scans_before = engine_.stats().sequences_scanned;
  auto second = engine_.Execute(Q3());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // same cached object
  EXPECT_EQ(engine_.stats().sequences_scanned, scans_before);
  EXPECT_EQ(engine_.stats().repository_hits, 1u);
}

TEST_F(EngineTest, GlobalGroupingAndSlices) {
  auto card_h = std::make_shared<ConceptHierarchy>(
      std::vector<std::string>{"card-id", "fare-group"});
  (void)card_h->SetParent(0, "688", "regular");
  (void)card_h->SetParent(0, "23456", "regular");
  (void)card_h->SetParent(0, "1012", "student");
  (void)card_h->SetParent(0, "77", "student");
  reg_->Register("card-id", card_h);

  CuboidSpec spec = Q3();
  spec.seq.group_by = {{"card-id", "fare-group"}};
  auto r = engine_.Execute(spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // 3D cuboid now: (fare-group, X, Y).
  EXPECT_EQ(CellByLabels(**r, {"regular", "Pentagon", "Wheaton"}), 2);
  EXPECT_EQ(CellByLabels(**r, {"student", "Clarendon", "Pentagon"}), 1);
  EXPECT_EQ(CellByLabels(**r, {"regular", "Clarendon", "Pentagon"}), -1);

  auto sliced =
      ops::SliceGlobal(spec, {"card-id", "fare-group"}, {"student"});
  ASSERT_TRUE(sliced.ok());
  auto rs = engine_.Execute(*sliced);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(CellByLabels(**rs, {"student", "Clarendon", "Pentagon"}), 1);
  EXPECT_EQ(CellByLabels(**rs, {"regular", "Pentagon", "Wheaton"}), -1);
}

TEST_F(EngineTest, IcebergFilterDropsLowSupportCells) {
  CuboidSpec spec = Q3();
  spec.iceberg_min_count = 2;
  auto r = engine_.Execute(spec);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_cells(), 2u);  // only the two count-2 cells survive
  EXPECT_EQ(CellByLabels(**r, {"Pentagon", "Wheaton"}), 2);
  EXPECT_EQ(CellByLabels(**r, {"Clarendon", "Pentagon"}), -1);
}

TEST_F(EngineTest, IndexReuseAcrossIterativeQueries) {
  SOlapEngine engine(table_.get(), reg_.get());
  auto q3 = engine.Execute(Q3(), ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(q3.ok());
  uint64_t hits_before = engine.stats().index_cache_hits;
  // APPEND Y: (X, Y, Y) — must reuse the cached L2 as its prefix.
  auto appended = ops::Append(Q3(), "Y");
  ASSERT_TRUE(appended.ok());
  // Predicate placeholders grew; drop the predicate for this test.
  CuboidSpec q_app = *appended;
  q_app.predicate = nullptr;
  q_app.placeholders.clear();
  auto r = engine.Execute(q_app, ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(engine.stats().index_cache_hits, hits_before);
  EXPECT_EQ(CellByLabels(**r, {"Pentagon", "Wheaton"}), 2);  // (P,W,W)
}

TEST_F(EngineTest, OnlineAggregationProgressAndEarlyStop) {
  auto raw = Fig8RawGroups();
  SOlapEngine engine(raw, reg_.get());
  CuboidSpec spec;
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {"symbol", "symbol"}, {}, ""},
               PatternDim{"Y", {"symbol", "symbol"}, {}, ""}};

  std::vector<double> fractions;
  auto full = engine.ExecuteOnline(
      spec, 1, [&](const SCuboid& partial, double fraction) {
        fractions.push_back(fraction);
        EXPECT_LE(partial.num_cells(), 9u);
        return true;
      });
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(fractions.size(), 4u);
  EXPECT_DOUBLE_EQ(fractions.back(), 1.0);
  for (size_t i = 1; i < fractions.size(); ++i) {
    EXPECT_GT(fractions[i], fractions[i - 1]);
  }
  // The completed online run matches the offline answer.
  SOlapEngine offline(raw, reg_.get());
  auto exact = offline.Execute(spec);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ((*full)->num_cells(), (*exact)->num_cells());

  // Early stop returns a partial cuboid and does not cache it.
  SOlapEngine engine2(raw, reg_.get());
  auto partial = engine2.ExecuteOnline(
      spec, 1, [&](const SCuboid&, double) { return false; });
  ASSERT_TRUE(partial.ok());
  EXPECT_LT((*partial)->num_cells(), (*exact)->num_cells());
  EXPECT_EQ(engine2.repository().size(), 0u);
}

TEST_F(EngineTest, IncrementalAppendMatchesRebuild) {
  auto raw = Fig8RawGroups();
  SOlapEngine engine(raw, reg_.get());
  CuboidSpec spec;
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {"symbol", "symbol"}, {}, ""},
               PatternDim{"Y", {"symbol", "symbol"}, {}, ""}};
  auto before = engine.Execute(spec, ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(before.ok());

  // Append two new sequences; the cached complete L2 extends incrementally.
  Code p = raw->raw_dictionary().Lookup("Pentagon");
  Code w = raw->raw_dictionary().Lookup("Wheaton");
  ASSERT_TRUE(engine.AppendRawSequences(0, {{p, w, p}, {w, w}}).ok());
  auto after = engine.Execute(spec, ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(after.ok());

  // A fresh engine over the extended data must agree exactly.
  SOlapEngine fresh(raw, reg_.get());
  auto rebuilt = fresh.Execute(spec, ExecStrategy::kCounterBased);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ((*after)->num_cells(), (*rebuilt)->num_cells());
  for (const auto& [key, cell] : (*rebuilt)->cells()) {
    EXPECT_EQ((*after)->CellAt(key).count, cell.count);
  }
  // (Pentagon, Wheaton) gained one sequence: 2 + 1 = 3.
  EXPECT_EQ(CellByLabels(**after, {"Pentagon", "Wheaton"}), 3);
}

TEST_F(EngineTest, TableAppendInvalidatesCaches) {
  auto r = engine_.Execute(Q3());
  ASSERT_TRUE(r.ok());
  EXPECT_GT(engine_.repository().size(), 0u);
  (void)table_->AppendRow({Value::Timestamp(MakeTimestamp(2007, 12, 26)),
                           Value::String("688"), Value::String("Wheaton"),
                           Value::String("in"), Value::Double(0)});
  engine_.NotifyTableAppend();
  EXPECT_EQ(engine_.repository().size(), 0u);
  EXPECT_EQ(engine_.IndexCacheBytes(), 0u);
  auto r2 = engine_.Execute(Q3());
  ASSERT_TRUE(r2.ok());
}

TEST_F(EngineTest, CuboidRenderingHasLabels) {
  auto r = engine_.Execute(Q3());
  ASSERT_TRUE(r.ok());
  std::string table = (*r)->ToTable(0);
  EXPECT_NE(table.find("Pentagon"), std::string::npos);
  EXPECT_NE(table.find("COUNT"), std::string::npos);
  auto top = (*r)->TopCells(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].second, 2);
}

}  // namespace
}  // namespace solap
