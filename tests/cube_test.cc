// Unit tests for the cube module: cell aggregation, SCuboid operations,
// cuboid specs and the LRU repository.
#include <gtest/gtest.h>

#include "solap/cube/cuboid.h"
#include "solap/cube/cuboid_repository.h"
#include "solap/cube/cuboid_spec.h"

namespace solap {
namespace {

TEST(CellValueTest, AggregationFolding) {
  CellValue c;
  c.Add(3.0);
  c.Add(-1.0);
  c.Add(4.0);
  EXPECT_EQ(c.count, 3);
  EXPECT_DOUBLE_EQ(c.Value(AggKind::kCount), 3.0);
  EXPECT_DOUBLE_EQ(c.Value(AggKind::kSum), 6.0);
  EXPECT_DOUBLE_EQ(c.Value(AggKind::kAvg), 2.0);
  EXPECT_DOUBLE_EQ(c.Value(AggKind::kMin), -1.0);
  EXPECT_DOUBLE_EQ(c.Value(AggKind::kMax), 4.0);
}

TEST(CellValueTest, EmptyCellNeutralValues) {
  CellValue c;
  EXPECT_DOUBLE_EQ(c.Value(AggKind::kCount), 0.0);
  EXPECT_DOUBLE_EQ(c.Value(AggKind::kSum), 0.0);
  EXPECT_DOUBLE_EQ(c.Value(AggKind::kAvg), 0.0);
  EXPECT_DOUBLE_EQ(c.Value(AggKind::kMin), 0.0);
  EXPECT_DOUBLE_EQ(c.Value(AggKind::kMax), 0.0);
}

TEST(CellValueTest, MergeCombinesStates) {
  CellValue a, b;
  a.Add(1.0);
  a.Add(5.0);
  b.Add(-2.0);
  a.Merge(b);
  EXPECT_EQ(a.count, 3);
  EXPECT_DOUBLE_EQ(a.sum, 4.0);
  EXPECT_DOUBLE_EQ(a.min, -2.0);
  EXPECT_DOUBLE_EQ(a.max, 5.0);
}

SCuboid MakeCuboid() {
  std::vector<DimDescriptor> dims = {
      {"X", {"location", "station"}, true},
      {"Y", {"location", "station"}, true},
  };
  SCuboid c(dims, AggKind::kCount);
  c.Add({0, 1}, 0);
  c.Add({0, 1}, 0);
  c.Add({2, 3}, 0);
  c.SetLabel(0, 0, "Pentagon");
  c.SetLabel(1, 1, "Wheaton");
  c.SetLabel(0, 2, "Clarendon");
  c.SetLabel(1, 3, "Deanwood");
  return c;
}

TEST(SCuboidTest, CellAccessAndLabels) {
  SCuboid c = MakeCuboid();
  EXPECT_EQ(c.num_cells(), 2u);
  EXPECT_DOUBLE_EQ(c.ValueAt({0, 1}), 2.0);
  EXPECT_DOUBLE_EQ(c.ValueAt({9, 9}), 0.0);  // absent cell
  EXPECT_EQ(c.LabelOf(0, 0), "Pentagon");
  EXPECT_EQ(c.LabelOf(0, 77), "77");  // fallback to the numeric code
}

TEST(SCuboidTest, ArgMaxAndTopCells) {
  SCuboid c = MakeCuboid();
  EXPECT_EQ(c.ArgMaxCell(), (CellKey{0, 1}));
  auto top = c.TopCells(0);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, (CellKey{0, 1}));
  EXPECT_DOUBLE_EQ(top[0].second, 2.0);
  EXPECT_EQ(c.TopCells(1).size(), 1u);
}

TEST(SCuboidTest, IcebergDropsBelowThreshold) {
  SCuboid c = MakeCuboid();
  EXPECT_EQ(c.ApplyIceberg(2), 1u);
  EXPECT_EQ(c.num_cells(), 1u);
  EXPECT_DOUBLE_EQ(c.ValueAt({2, 3}), 0.0);
}

TEST(SCuboidTest, ToTableRendersLabelsAndValues) {
  SCuboid c = MakeCuboid();
  std::string t = c.ToTable(1);
  EXPECT_NE(t.find("Pentagon"), std::string::npos);
  EXPECT_NE(t.find("COUNT"), std::string::npos);
  EXPECT_NE(t.find("more cells"), std::string::npos);
  EXPECT_GT(c.ByteSize(), 0u);
}

TEST(CuboidSpecTest, CanonicalStringDistinguishesSpecs) {
  CuboidSpec a;
  a.symbols = {"X", "Y"};
  a.dims = {PatternDim{"X", {"p", "p"}, {}, ""},
            PatternDim{"Y", {"p", "p"}, {}, ""}};
  CuboidSpec b = a;
  EXPECT_EQ(a.CanonicalString(), b.CanonicalString());
  b.kind = PatternKind::kSubsequence;
  EXPECT_NE(a.CanonicalString(), b.CanonicalString());
  b = a;
  b.restriction = CellRestriction::kAllMatchedGo;
  EXPECT_NE(a.CanonicalString(), b.CanonicalString());
  b = a;
  b.dims[0].fixed_labels = {"v"};
  EXPECT_NE(a.CanonicalString(), b.CanonicalString());
  b = a;
  b.iceberg_min_count = 3;
  EXPECT_NE(a.CanonicalString(), b.CanonicalString());
  EXPECT_EQ(a.DimIndex("Y"), 1);
  EXPECT_EQ(a.DimIndex("Q"), -1);
}

std::shared_ptr<const SCuboid> MakeCuboidPtr(int tag) {
  std::vector<DimDescriptor> dims = {{"X", {"p", "p"}, true}};
  auto c = std::make_shared<SCuboid>(dims, AggKind::kCount);
  for (int i = 0; i <= tag; ++i) c->Add({static_cast<Code>(i)}, 0);
  return c;
}

TEST(CuboidRepositoryTest, LookupInsertAndLru) {
  CuboidRepository repo(1 << 20);
  EXPECT_EQ(repo.Lookup("a"), nullptr);
  auto a = MakeCuboidPtr(0);
  repo.Insert("a", a);
  EXPECT_EQ(repo.Lookup("a"), a);
  EXPECT_EQ(repo.size(), 1u);
  EXPECT_GT(repo.bytes_used(), 0u);
  repo.Insert("a", MakeCuboidPtr(1));  // replace
  EXPECT_EQ(repo.size(), 1u);
  EXPECT_NE(repo.Lookup("a"), a);
  repo.Clear();
  EXPECT_EQ(repo.size(), 0u);
  EXPECT_EQ(repo.bytes_used(), 0u);
}

TEST(CuboidRepositoryTest, EvictsLeastRecentlyUsed) {
  auto one = MakeCuboidPtr(0);
  size_t unit = one->ByteSize();
  CuboidRepository repo(3 * unit + unit / 2);  // fits three small entries
  repo.Insert("a", MakeCuboidPtr(0));
  repo.Insert("b", MakeCuboidPtr(0));
  repo.Insert("c", MakeCuboidPtr(0));
  EXPECT_EQ(repo.size(), 3u);
  // Touch "a" so "b" becomes the LRU victim.
  EXPECT_NE(repo.Lookup("a"), nullptr);
  repo.Insert("d", MakeCuboidPtr(0));
  EXPECT_EQ(repo.Lookup("b"), nullptr);
  EXPECT_NE(repo.Lookup("a"), nullptr);
  EXPECT_NE(repo.Lookup("c"), nullptr);
  EXPECT_NE(repo.Lookup("d"), nullptr);
}

TEST(CuboidRepositoryTest, ZeroCapacityDisablesCaching) {
  CuboidRepository repo(0);
  repo.Insert("a", MakeCuboidPtr(0));
  EXPECT_EQ(repo.Lookup("a"), nullptr);
  EXPECT_EQ(repo.size(), 0u);
}

}  // namespace
}  // namespace solap
