// Concurrency stress tests: many threads running a mixed CB/II batch
// (including repeated specs) must produce bit-identical cuboids and —
// for CB-only batches — identical engine stat totals to a sequential
// single-threaded run. These are the tests tools/check.sh runs under
// ThreadSanitizer.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "solap/engine/operations.h"
#include "solap/gen/synthetic.h"
#include "solap/service/query_service.h"

namespace solap {
namespace {

CuboidSpec XYSpec() {
  CuboidSpec spec;
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""},
               PatternDim{"Y", {SyntheticData::kAttr, "symbol"}, {}, ""}};
  return spec;
}

// COUNT cuboids as ordered (key -> count) maps: integer counts make the
// comparison exact, and the ordering makes mismatches readable.
std::map<CellKey, int64_t> CountMap(const SCuboid& c) {
  std::map<CellKey, int64_t> out;
  for (const auto& [key, cell] : c.cells()) out[key] = cell.count;
  return out;
}

struct Query {
  CuboidSpec spec;
  ExecStrategy strategy;
};

class ServiceStressTest : public ::testing::Test {
 protected:
  ServiceStressTest() : data_(GenerateSynthetic(Params())) {}

  static SyntheticParams Params() {
    SyntheticParams p;
    p.num_sequences = 5000;  // big enough to overlap, small enough for TSan
    p.num_symbols = 30;
    return p;
  }

  // ~50 queries: `distinct` specs sliced to the heaviest base cells,
  // alternating CB/II, each submitted `repeat` times back to back.
  std::vector<Query> MixedBatch(size_t distinct, size_t repeat,
                                bool cb_only = false) {
    SOlapEngine scout(data_.groups, data_.hierarchies.get());
    auto base = scout.Execute(XYSpec(), ExecStrategy::kCounterBased);
    EXPECT_TRUE(base.ok());
    auto cells = (*base)->TopCells(distinct);
    EXPECT_GE(cells.size(), distinct);

    std::vector<Query> batch;
    for (size_t q = 0; q < distinct; ++q) {
      auto sliced = ops::SliceToCell(XYSpec(), **base, cells[q].first);
      EXPECT_TRUE(sliced.ok()) << sliced.status().ToString();
      ExecStrategy strategy =
          (cb_only || q % 2 == 0) ? ExecStrategy::kCounterBased
                                  : ExecStrategy::kInvertedIndex;
      for (size_t r = 0; r < repeat; ++r) {
        batch.push_back({*sliced, strategy});
      }
    }
    return batch;
  }

  // Sequential ground truth on a fresh engine.
  std::vector<std::map<CellKey, int64_t>> SequentialBaseline(
      const std::vector<Query>& batch) {
    SOlapEngine engine(data_.groups, data_.hierarchies.get());
    std::vector<std::map<CellKey, int64_t>> out;
    for (const Query& q : batch) {
      auto r = engine.Execute(q.spec, q.strategy);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      out.push_back(CountMap(**r));
    }
    return out;
  }

  SyntheticData data_;
};

TEST_F(ServiceStressTest, EightThreadsMatchSequentialBitForBit) {
  std::vector<Query> batch = MixedBatch(/*distinct=*/25, /*repeat=*/2);
  ASSERT_EQ(batch.size(), 50u);
  std::vector<std::map<CellKey, int64_t>> expected =
      SequentialBaseline(batch);

  SOlapEngine engine(data_.groups, data_.hierarchies.get());
  ServiceOptions opts;
  opts.num_threads = 8;
  opts.max_queue_depth = batch.size() + 8;
  QueryService service(&engine, opts);

  std::vector<QueryService::Ticket> tickets;
  for (const Query& q : batch) {
    SubmitOptions so;
    so.strategy = q.strategy;
    tickets.push_back(service.Submit(q.spec, so));
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    QueryResponse resp = tickets[i].response.get();
    ASSERT_TRUE(resp.status.ok())
        << "query " << i << ": " << resp.status.ToString();
    ASSERT_NE(resp.cuboid, nullptr);
    EXPECT_EQ(CountMap(*resp.cuboid), expected[i]) << "query " << i;
  }
  EXPECT_EQ(service.metrics().counter("queries_ok")->Value(), batch.size());
  EXPECT_EQ(service.PendingQueries(), 0u);
}

// Satellite regression for the ScanStats aggregation race: the engine
// totals after a concurrent run must equal the single-threaded totals for
// the same batch. CB-only with distinct specs keeps every per-query count
// schedule-independent (II lists_built varies with which duplicate builds
// a shared index first).
TEST_F(ServiceStressTest, StatTotalsIdenticalAcrossThreadCounts) {
  std::vector<Query> batch =
      MixedBatch(/*distinct=*/20, /*repeat=*/1, /*cb_only=*/true);

  auto totals_at = [&](size_t threads) {
    SOlapEngine engine(data_.groups, data_.hierarchies.get());
    ServiceOptions opts;
    opts.num_threads = threads;
    opts.max_queue_depth = batch.size() + threads;
    opts.single_flight = false;  // distinct specs: nothing to dedup
    QueryService service(&engine, opts);
    std::vector<QueryService::Ticket> tickets;
    for (const Query& q : batch) {
      SubmitOptions so;
      so.strategy = q.strategy;
      tickets.push_back(service.Submit(q.spec, so));
    }
    for (auto& t : tickets) {
      EXPECT_TRUE(t.response.get().status.ok());
    }
    return engine.StatsSnapshot();
  };

  ScanStats one = totals_at(1);
  ScanStats eight = totals_at(8);
  EXPECT_EQ(one.sequences_scanned, eight.sequences_scanned);
  EXPECT_EQ(one.lists_built, eight.lists_built);
  EXPECT_EQ(one.list_intersections, eight.list_intersections);
  EXPECT_EQ(one.index_bytes_built, eight.index_bytes_built);
  EXPECT_EQ(one.repository_hits, eight.repository_hits);
  EXPECT_EQ(one.index_cache_hits, eight.index_cache_hits);
}

// Single-flight: N concurrent submissions of one spec execute it once;
// the duplicates land on the repository, sequential-style (1 miss +
// N-1 hits) no matter how the scheduler interleaves them.
TEST_F(ServiceStressTest, SingleFlightDedupesConcurrentDuplicates) {
  constexpr size_t kDuplicates = 16;
  SOlapEngine engine(data_.groups, data_.hierarchies.get());
  ServiceOptions opts;
  opts.num_threads = 8;
  opts.max_queue_depth = kDuplicates + 8;
  QueryService service(&engine, opts);

  std::vector<QueryService::Ticket> tickets;
  SubmitOptions cb;
  cb.strategy = ExecStrategy::kCounterBased;
  for (size_t i = 0; i < kDuplicates; ++i) {
    tickets.push_back(service.Submit(XYSpec(), cb));
  }
  for (auto& t : tickets) {
    ASSERT_TRUE(t.response.get().status.ok());
  }
  EXPECT_EQ(service.metrics().counter("repository_hits")->Value(),
            kDuplicates - 1);
  ScanStats totals = engine.StatsSnapshot();
  // One real execution's worth of scanning: 5000 sequences, once.
  EXPECT_EQ(totals.sequences_scanned, 5000u);
}

}  // namespace
}  // namespace solap
