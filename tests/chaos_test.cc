// Chaos suite (built only with -DSOLAP_FAILPOINTS=ON): every failpoint in
// the system armed at low probability with deterministic seeds, an 8-thread
// QueryService driven by 8 client threads (>1200 queries), and a concurrent
// snapshot writer being killed mid-write. Invariants:
//   - no crash, deadlock or sanitizer finding (the suite runs under ASan
//     and TSan via tools/check.sh);
//   - every OK response is bit-identical to the fault-free reference;
//   - every non-OK response carries an expected injection/shed code;
//   - a torn snapshot write never corrupts the last good snapshot;
//   - after DisarmAll, the surviving engine still answers correctly.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "solap/common/failpoint.h"
#include "solap/common/retry.h"
#include "solap/cube/partial_codec.h"
#include "solap/engine/engine.h"
#include "solap/engine/sharded_engine.h"
#include "solap/gen/synthetic.h"
#include "solap/gen/transit.h"
#include "solap/net/query_routes.h"
#include "solap/net/server.h"
#include "solap/service/query_service.h"
#include "solap/service/shard_supervisor.h"
#include "solap/storage/hierarchy_io.h"
#include "solap/storage/io.h"
#include "paper_fixtures.h"

#ifdef SOLAP_SHARD_MAIN_PATH
#include <signal.h>
#include <chrono>
#include <filesystem>
#include <functional>
#endif

#ifndef SOLAP_FAILPOINTS
#error "chaos_test requires a -DSOLAP_FAILPOINTS=ON build"
#endif

namespace solap {
namespace {

constexpr size_t kClientThreads = 8;
constexpr size_t kQueriesPerClient = 160;  // 8 * 160 = 1280 > the 1k floor

CuboidSpec MakeSpec(const std::vector<LevelRef>& levels) {
  // Raw synthetic groups carry no measures, so every chaos spec is COUNT —
  // which is also what makes CB and (possibly degraded) II bit-identical.
  CuboidSpec spec;
  const char* names[] = {"X", "Y", "Z"};
  for (size_t i = 0; i < levels.size(); ++i) {
    spec.symbols.push_back(names[i]);
    spec.dims.push_back(PatternDim{names[i], levels[i], {}, ""});
  }
  return spec;
}

struct ChaosFixture {
  ChaosFixture() {
    SyntheticParams p;
    p.num_sequences = 1500;
    p.num_symbols = 20;
    p.seed = 11;
    data = GenerateSynthetic(p);
    specs = {
        MakeSpec({data.Base()}),
        MakeSpec({data.Base(), data.Base()}),
        MakeSpec({data.Group(), data.Group()}),        // P-ROLL-UP source
        MakeSpec({data.Super(), data.Super()}),
        MakeSpec({data.Base(), data.Base(), data.Base()}),  // join growth
        MakeSpec({data.Group(), data.Base()}),
    };
    // Fault-free references from a pristine engine.
    SOlapEngine reference(data.groups, data.hierarchies.get());
    for (const CuboidSpec& spec : specs) {
      auto r = reference.Execute(spec, ExecStrategy::kCounterBased);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      expected[spec.CanonicalString()] = *r;
    }
  }

  SyntheticData data;
  std::vector<CuboidSpec> specs;
  std::map<std::string, std::shared_ptr<const SCuboid>> expected;
};

bool Identical(const SCuboid& got, const SCuboid& want) {
  if (got.num_cells() != want.num_cells()) return false;
  for (const auto& [key, cell] : want.cells()) {
    if (got.CellAt(key).count != cell.count) return false;
  }
  return true;
}

// Arms every failpoint in the system at ~p with per-point deterministic
// seeds. Throw actions go only to sites reached from the engine's catching
// frames; IO and admission sites return errors (a throw there would unwind
// into the test threads).
void ArmEverything(double p, uint64_t run_seed) {
  auto arm = [&](const char* name, FailpointConfig::Action action,
                 StatusCode code, double prob) {
    FailpointConfig c;
    c.action = action;
    c.code = code;
    c.probability = prob;
    c.seed = run_seed ^ std::hash<std::string>{}(name);
    FailpointRegistry::Global().Arm(name, c);
  };
  using Action = FailpointConfig::Action;
  arm("index.build", Action::kReturnError, StatusCode::kInternal, p);
  arm("index.join", Action::kThrowBadAlloc, StatusCode::kInternal, p);
  arm("join.scratch", Action::kReturnError, StatusCode::kResourceExhausted, p);
  arm("index.rollup", Action::kReturnError, StatusCode::kInternal, p);
  arm("index.refine", Action::kDelay, StatusCode::kInternal, p);
  arm("index.extend_scan", Action::kReturnError, StatusCode::kInternal, p);
  arm("engine.formation", Action::kReturnError, StatusCode::kInternal, p);
  arm("mem.charge", Action::kReturnError, StatusCode::kResourceExhausted,
      p / 2);
  arm("service.submit", Action::kReturnError, StatusCode::kResourceExhausted,
      p / 2);
  // Network sites: accept/read/write faults tear connections; clients must
  // see clean errors or EOF, never a hang or a corrupted response.
  arm("net.accept", Action::kReturnError, StatusCode::kInternal, p / 2);
  arm("net.read", Action::kReturnError, StatusCode::kInternal, p / 2);
  arm("net.write", Action::kReturnError, StatusCode::kInternal, p / 2);
  arm("io.snapshot.open", Action::kReturnError, StatusCode::kInternal, p);
  arm("io.snapshot.write", Action::kReturnError, StatusCode::kInternal, p);
  arm("io.snapshot.sync", Action::kReturnError, StatusCode::kInternal, p);
  arm("io.snapshot.rename", Action::kReturnError, StatusCode::kInternal, p);
  arm("io.snapshot.read", Action::kReturnError, StatusCode::kInternal, p);
  arm("csv.read", Action::kReturnError, StatusCode::kInternal, p);
}

TEST(ChaosTest, ConcurrentQueriesUnderFullFaultLoadStayCorrect) {
  ChaosFixture fx;

  const std::string snap = ::testing::TempDir() + "solap_chaos_snapshot.bin";
  std::remove(snap.c_str());
  std::remove((snap + ".tmp").c_str());
  auto snap_table = testing::Fig8Table();
  // The good snapshot is published before any fault is armed; from here on
  // every write may be torn and must never damage it.
  ASSERT_TRUE(SaveTable(*snap_table, snap).ok());

  ArmEverything(0.05, /*run_seed=*/20260806);

  EngineOptions constrained;
  constrained.memory_budget_bytes = 8 << 20;  // real budget + injected rejects
  SOlapEngine engine(fx.data.groups, fx.data.hierarchies.get(), constrained);
  ServiceOptions sopts;
  sopts.num_threads = 8;
  sopts.max_queue_depth = 0;  // unbounded: only injected sheds expected
  QueryService service(&engine, sopts);

  std::atomic<uint64_t> ok_count{0}, shed_count{0}, mismatches{0},
      unexpected{0};
  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (size_t t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      const ExecStrategy strategies[] = {ExecStrategy::kCounterBased,
                                         ExecStrategy::kInvertedIndex,
                                         ExecStrategy::kAuto};
      for (size_t q = 0; q < kQueriesPerClient; ++q) {
        const CuboidSpec& spec = fx.specs[(t + q) % fx.specs.size()];
        SubmitOptions opts;
        opts.strategy = strategies[(t * kQueriesPerClient + q) % 3];
        QueryResponse resp = service.Run(spec, opts);
        if (resp.status.ok()) {
          ok_count.fetch_add(1);
          if (!Identical(*resp.cuboid,
                         *fx.expected.at(spec.CanonicalString()))) {
            mismatches.fetch_add(1);
          }
        } else if (resp.status.code() == StatusCode::kResourceExhausted) {
          shed_count.fetch_add(1);  // injected admission shed
        } else {
          unexpected.fetch_add(1);
          ADD_FAILURE() << "unexpected status: " << resp.status.ToString();
        }
      }
    });
  }

  // Snapshot writer under fire: saves race with injected open/write/sync/
  // rename faults. The destination must load as the good table after every
  // attempt — torn writes may only ever strand a .tmp.
  std::atomic<bool> stop_writer{false};
  std::atomic<uint64_t> save_faults{0}, corruptions{0};
  std::thread writer([&] {
    RetryPolicy retry;
    retry.initial_backoff = std::chrono::milliseconds(0);
    while (!stop_writer.load(std::memory_order_relaxed)) {
      if (!SaveTable(*snap_table, snap).ok()) save_faults.fetch_add(1);
      auto loaded = LoadTable(snap, retry);
      if (loaded.ok()) {
        if ((*loaded)->num_rows() != snap_table->num_rows()) {
          corruptions.fetch_add(1);
        }
      } else if (loaded.status().code() != StatusCode::kInternal) {
        // Injected read faults are kInternal (and mostly retried away);
        // ParseError would mean the snapshot was actually damaged.
        corruptions.fetch_add(1);
        ADD_FAILURE() << "snapshot damaged: " << loaded.status().ToString();
      }
    }
  });

  for (std::thread& t : clients) t.join();
  stop_writer.store(true, std::memory_order_relaxed);
  writer.join();

  FailpointRegistry::Global().DisarmAll();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(unexpected.load(), 0u);
  EXPECT_EQ(corruptions.load(), 0u);
  EXPECT_EQ(ok_count.load() + shed_count.load(),
            kClientThreads * kQueriesPerClient);
  EXPECT_GT(ok_count.load(), 0u);

  // The chaos run should actually have exercised the machinery: faults
  // fired somewhere, and some OK answers came from II→CB degradation.
  uint64_t total_fires = 0;
  for (const char* point :
       {"index.build", "index.join", "mem.charge", "service.submit",
        "io.snapshot.write"}) {
    total_fires += FailpointRegistry::Global().Fires(point);
  }
  EXPECT_GT(total_fires, 0u) << "chaos run fired no faults — p too low?";
  service.RefreshResourceMetrics();
  const std::string metrics = service.metrics().ToString();
  EXPECT_NE(metrics.find("degraded_queries"), std::string::npos);

  // Post-chaos sanity: the same engine, faults disarmed, answers every spec
  // bit-identically — no internal state was corrupted by the fault load.
  for (const CuboidSpec& spec : fx.specs) {
    QueryResponse resp = service.Run(spec);
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    EXPECT_TRUE(Identical(*resp.cuboid,
                          *fx.expected.at(spec.CanonicalString())))
        << spec.CanonicalString();
  }

  // And the snapshot survived the whole bombardment.
  auto final_load = LoadTable(snap);
  ASSERT_TRUE(final_load.ok()) << final_load.status().ToString();
  EXPECT_EQ((*final_load)->num_rows(), snap_table->num_rows());
  std::remove(snap.c_str());
  std::remove((snap + ".tmp").c_str());
}

// One HTTP exchange over loopback, one request per connection
// (Connection: close framing keeps the client trivial). Returns the HTTP
// status code, 0 for a torn connection (EOF/reset before a status line),
// or -1 when the connect itself failed.
int HttpExchange(uint16_t port, const std::string& body) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  timeval tv{10, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const std::string req =
      "POST /query HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
      "Content-Length: " +
      std::to_string(body.size()) + "\r\n\r\n" + body;
  size_t off = 0;
  while (off < req.size()) {
    ssize_t n = ::send(fd, req.data() + off, req.size() - off, MSG_NOSIGNAL);
    if (n <= 0) break;  // torn by an injected write/read fault
    off += static_cast<size_t>(n);
  }
  std::string reply;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    reply.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  if (reply.compare(0, 5, "HTTP/") != 0 || reply.size() < 12) return 0;
  return std::atoi(reply.c_str() + 9);
}

TEST(ChaosTest, HttpTrafficUnderFullFaultLoadDegradesCleanly) {
  ChaosFixture fx;
  ArmEverything(0.05, /*run_seed=*/20260809);

  SOlapEngine engine(fx.data.groups, fx.data.hierarchies.get());
  ServiceOptions sopts;
  sopts.num_threads = 4;
  QueryService service(&engine, sopts);
  net::HttpServerOptions hopts;
  hopts.num_workers = 4;
  net::HttpServer server(net::BuildSolapRouter(&service), hopts,
                         &service.metrics());
  ASSERT_TRUE(server.Start().ok());

  const std::string query =
      "SELECT COUNT(*) FROM S CLUSTER BY x AT x SEQUENCE BY t "
      "CUBOID BY SUBSTRING (X, Y) WITH X AS symbol AT symbol, "
      "Y AS symbol AT symbol LEFT-MAXIMALITY";

  std::atomic<uint64_t> ok{0}, torn{0}, mapped_errors{0}, unexpected{0};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      for (int q = 0; q < 40; ++q) {
        switch (int status = HttpExchange(server.port(), query)) {
          case 200:
            ok.fetch_add(1);
            break;
          case -1:  // accept backlog raced a torn accept; still clean
          case 0:
            torn.fetch_add(1);
            break;
          case 400:
          case 429:
          case 500:
          case 503:
          case 504:
            mapped_errors.fetch_add(1);
            break;
          default:
            unexpected.fetch_add(1);
            ADD_FAILURE() << "unexpected HTTP status " << status;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  uint64_t net_fires = 0;
  for (const char* point : {"net.accept", "net.read", "net.write"}) {
    net_fires += FailpointRegistry::Global().Fires(point);
  }
  FailpointRegistry::Global().DisarmAll();

  EXPECT_EQ(unexpected.load(), 0u);
  EXPECT_GT(ok.load(), 0u);  // the fault load must not starve the service
  EXPECT_GT(net_fires, 0u) << "no network fault fired — p too low?";

  // Faults disarmed: the surviving server answers a clean 200.
  EXPECT_EQ(HttpExchange(server.port(), query), 200);
  server.Stop();
}

TEST(ChaosTest, SameSeedReproducesTheSameFireCounts) {
  ChaosFixture fx;
  auto run = [&](uint64_t seed) {
    ArmEverything(0.30, seed);
    // Fresh engine per round: a warm cuboid repository would serve hits
    // without evaluating any failpoint, starving the sample.
    for (int round = 0; round < 8; ++round) {
      SOlapEngine engine(fx.data.groups, fx.data.hierarchies.get());
      for (const CuboidSpec& spec : fx.specs) {
        (void)engine.Execute(spec, ExecStrategy::kInvertedIndex);
      }
    }
    std::map<std::string, std::pair<uint64_t, uint64_t>> counts;
    for (const std::string& name : FailpointRegistry::Global().ArmedNames()) {
      counts[name] = {FailpointRegistry::Global().Evaluations(name),
                      FailpointRegistry::Global().Fires(name)};
    }
    FailpointRegistry::Global().DisarmAll();
    return counts;
  };
  // Single-threaded execution: per-site evaluation order is deterministic,
  // so identical seeds must produce identical per-site evaluation and fire
  // counts, and the sample must actually contain fires.
  auto a = run(42), b = run(42), c = run(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  uint64_t total_fires = 0;
  for (const auto& [name, counts] : a) total_fires += counts.second;
  EXPECT_GT(total_fires, 0u);
}

// ------------------------------------------- concurrent-writer chaos

// Streaming ingestion under fault load (docs/INGESTION.md): two writer
// threads appending fixed-size batches race two reader threads and a
// merge kicker while ingest.append, ingest.merge, the formation-extension
// scan and the memory governor all inject failures. Invariants:
//   - a failed append rejects its batch atomically (ingest.append fires
//     before any row lands; the epoch only advances on commit), so a
//     reader observing epoch e saw exactly the first B + R * (e / 2) rows
//     of the final table;
//   - every answer is bit-identical to a fresh engine rebuilt over that
//     row prefix with no faults armed;
//   - failed merges and governor rejects cost only cached state, never
//     correctness.
TEST(ChaosTest, ConcurrentWritersUnderFaultLoadStayEpochConsistent) {
  auto table = testing::Fig8Table();
  auto reg = testing::Fig8Hierarchies();
  EngineOptions opts;
  opts.auto_delta_merge = false;  // the kicker thread drives merges
  SOlapEngine engine(table.get(), reg.get(), opts);
  const size_t base_rows = table->num_rows();
  constexpr size_t kBatchRows = 2;
  constexpr size_t kWriterThreads = 2;
  constexpr size_t kBatchesPerWriter = 20;

  CuboidSpec spec;
  spec.seq.cluster_by = {{"card-id", "card-id"}};
  spec.seq.sequence_by = "time";
  spec.symbols = {"X"};
  spec.dims = {PatternDim{"X", {"location", "station"}, {}, ""}};

  auto arm = [](const char* name, StatusCode code, double p) {
    FailpointConfig c;
    c.action = FailpointConfig::Action::kReturnError;
    c.code = code;
    c.probability = p;
    c.seed = 20260810 ^ std::hash<std::string>{}(name);
    FailpointRegistry::Global().Arm(name, c);
  };
  arm("ingest.append", StatusCode::kUnavailable, 0.15);
  arm("ingest.merge", StatusCode::kInternal, 0.25);
  arm("index.extend_scan", StatusCode::kInternal, 0.10);
  arm("mem.charge", StatusCode::kResourceExhausted, 0.02);

  std::mutex journal_mu;
  std::map<uint64_t, std::string> journal;  // epoch -> canonical answer
  std::atomic<bool> done{false};
  std::atomic<uint64_t> commits{0}, rejected_appends{0}, reader_sheds{0};

  std::vector<std::thread> threads;
  for (size_t rdr = 0; rdr < 2; ++rdr) {
    threads.emplace_back([&] {
      do {
        const bool last = done.load();
        uint64_t epoch = 0;
        ExecControl ctl;
        ctl.epoch_out = &epoch;
        auto r = engine.Execute(spec, ExecStrategy::kAuto, ctl);
        if (!r.ok()) {
          // The only tolerated reader failure is a governor reject.
          if (r.status().code() == StatusCode::kResourceExhausted) {
            reader_sheds.fetch_add(1);
          } else {
            ADD_FAILURE() << "reader: " << r.status().ToString();
            return;
          }
        } else {
          EXPECT_EQ(epoch % 2, 0u);
          const std::string canonical = EncodeShardPartial(**r, ScanStats{});
          std::lock_guard<std::mutex> lock(journal_mu);
          auto [it, inserted] = journal.emplace(epoch, canonical);
          if (!inserted) {
            EXPECT_EQ(it->second, canonical)
                << "two readers disagreed at epoch " << epoch;
          }
        }
        if (last) break;
      } while (true);
    });
  }
  threads.emplace_back([&] {  // merge kicker; injected failures tolerated
    while (!done.load()) {
      (void)engine.MergeDeltasNow();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriterThreads; ++w) {
    writers.emplace_back([&, w] {
      for (size_t b = 0; b < kBatchesPerWriter; ++b) {
        const int64_t t = MakeTimestamp(2007, 12, 27, 0, 0, 0) +
                          static_cast<int64_t>(w) * 100000 +
                          static_cast<int64_t>(b) * 600;
        const std::string card =
            (b % 5 == 4) ? "688"
                         : "c" + std::to_string(w) + "-" + std::to_string(b);
        std::vector<std::vector<Value>> batch = {
            {Value::Timestamp(t), Value::String(card),
             Value::String("Pentagon"), Value::String("in"),
             Value::Double(0.0)},
            {Value::Timestamp(t + 60), Value::String(card),
             Value::String("Wheaton"), Value::String("out"),
             Value::Double(-2.0)}};
        Status s = engine.IngestRows(batch);
        if (s.ok()) {
          commits.fetch_add(1);
        } else if (s.code() == StatusCode::kUnavailable) {
          rejected_appends.fetch_add(1);  // injected, batch atomically gone
        } else {
          ADD_FAILURE() << "writer " << w << ": " << s.ToString();
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true);
  for (std::thread& t : threads) t.join();
  FailpointRegistry::Global().DisarmAll();

  // Accounting: every batch either committed (advancing the epoch by 2 and
  // the table by kBatchRows rows) or was rejected whole.
  EXPECT_EQ(commits.load() + rejected_appends.load(),
            kWriterThreads * kBatchesPerWriter);
  EXPECT_GT(rejected_appends.load(), 0u) << "no append fault fired — p too low?";
  EXPECT_EQ(engine.epoch(), 2 * commits.load());
  EXPECT_EQ(table->num_rows(), base_rows + kBatchRows * commits.load());

  // Every observed epoch must match a fault-free rebuild over its prefix.
  for (const auto& [epoch, canonical] : journal) {
    const size_t rows = base_rows + kBatchRows * (epoch / 2);
    auto fresh_table = std::make_shared<EventTable>(table->schema());
    const size_t cols = table->schema().num_fields();
    for (size_t r = 0; r < rows; ++r) {
      std::vector<Value> row;
      row.reserve(cols);
      for (size_t c = 0; c < cols; ++c) {
        row.push_back(
            table->GetValue(static_cast<RowId>(r), static_cast<int>(c)));
      }
      ASSERT_TRUE(fresh_table->AppendRow(row).ok());
    }
    SOlapEngine fresh(fresh_table.get(), reg.get(), opts);
    auto want = fresh.Execute(spec, ExecStrategy::kAuto);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    EXPECT_EQ(EncodeShardPartial(**want, ScanStats{}), canonical)
        << "epoch " << epoch << " (" << rows
        << " rows) diverged from a fault-free rebuild";
  }
}

// ------------------------------------------- distributed shard chaos

#ifdef SOLAP_SHARD_MAIN_PATH

// SIGKILL one real shard process mid-query-stream while every shard.rpc.*
// failpoint is armed (injected transport faults on send, receive and
// decode). Invariants (ISSUE 9 / DESIGN.md §10 failure matrix):
//   - degraded + local fallback: EVERY query answers bit-identically to
//     the in-process reference, through injected faults, through the dead
//     window, and after the restart;
//   - strict mode while the shard is dead: kUnavailable, never a partial;
//   - degraded without fallback while dead: OK but flagged partial with
//     exactly the killed shard missing, and never cached;
//   - after the supervisor restarts the shard (same port), faults
//     disarmed: strict mode answers bit-identically again.
TEST(ChaosTest, ShardKillMidStreamUnderRpcFaults) {
  TransitParams tp;
  tp.num_passengers = 250;
  tp.num_days = 1;
  tp.seed = 13;
  TransitData data = GenerateTransit(tp);

  const std::string dir =
      ::testing::TempDir() + "solap_chaos_dist_" + std::to_string(::getpid());
  std::filesystem::create_directories(dir);
  const std::string table_path = dir + "/table.solap";
  const std::string hier_path = dir + "/hier.json";
  ASSERT_TRUE(SaveTable(*data.table, table_path).ok());
  ASSERT_TRUE(SaveHierarchies(*data.hierarchies, hier_path).ok());

  std::vector<ShardProcessSpec> specs;
  for (size_t i = 0; i < 2; ++i) {
    ShardProcessSpec spec;
    spec.args = {SOLAP_SHARD_MAIN_PATH,
                 "--table",      table_path,
                 "--hier",       hier_path,
                 "--shard",      std::to_string(i),
                 "--num-shards", "2",
                 "--shard-by",   "card-id"};
    spec.port_file = dir + "/shard" + std::to_string(i) + ".port";
    specs.push_back(std::move(spec));
  }
  ShardSupervisorOptions sup_opts;
  sup_opts.poll_interval = std::chrono::milliseconds(50);
  // A wide dead window: the strict/partial assertions below must run
  // before the restart can heal the shard.
  sup_opts.restart_backoff = std::chrono::milliseconds(1500);
  ShardSupervisor supervisor(std::move(specs), sup_opts);
  ASSERT_TRUE(supervisor.Start().ok());

  CuboidSpec spec;
  spec.agg = AggKind::kSum;
  spec.measure = "amount";
  spec.seq.cluster_by = {{"card-id", "individual"}};
  spec.seq.sequence_by = "time";
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {"location", "station"}, {}, ""},
               PatternDim{"Y", {"location", "station"}, {}, ""}};

  EngineOptions copts;
  copts.shards = 2;
  copts.shard_by = "card-id";
  copts.exec_threads = 2;
  ShardedEngine reference(data.table.get(), data.hierarchies.get(), copts);
  auto want = reference.Execute(spec, ExecStrategy::kCounterBased);
  ASSERT_TRUE(want.ok());

  RemoteShardOptions rpc;
  rpc.retry.max_attempts = 3;
  rpc.retry.initial_backoff = std::chrono::milliseconds(1);
  rpc.retry.max_backoff = std::chrono::milliseconds(10);
  rpc.retry.full_jitter = true;
  rpc.default_timeout = std::chrono::milliseconds(10000);

  ShardedEngine resilient(data.table.get(), data.hierarchies.get(), copts);
  ASSERT_TRUE(resilient
                  .EnableRemoteScatter(supervisor.endpoints(), rpc,
                                       DegradePolicy::kDegraded,
                                       /*local_fallback=*/true)
                  .ok());
  supervisor.SetHealthCallback([&](size_t shard, bool healthy) {
    resilient.SetShardHealthy(shard, healthy);
  });
  ShardedEngine strict(data.table.get(), data.hierarchies.get(), copts);
  ASSERT_TRUE(strict
                  .EnableRemoteScatter(supervisor.endpoints(), rpc,
                                       DegradePolicy::kStrict)
                  .ok());
  ShardedEngine partial(data.table.get(), data.hierarchies.get(), copts);
  ASSERT_TRUE(partial
                  .EnableRemoteScatter(supervisor.endpoints(), rpc,
                                       DegradePolicy::kDegraded,
                                       /*local_fallback=*/false)
                  .ok());

  // Injected transport faults on every client-side RPC stage. All are
  // kUnavailable — the retryable class — so the resilient engine must
  // absorb every one of them (retry or local fallback), never erroring.
  auto arm = [](const char* name, double p) {
    FailpointConfig c;
    c.action = FailpointConfig::Action::kReturnError;
    c.code = StatusCode::kUnavailable;
    c.probability = p;
    c.seed = 20260809 ^ std::hash<std::string>{}(name);
    FailpointRegistry::Global().Arm(name, c);
  };
  arm("shard.rpc.send", 0.10);
  arm("shard.rpc.recv", 0.10);
  arm("shard.rpc.decode", 0.05);

  auto identical = [&](const SCuboid& got) {
    if (got.num_cells() != (*want)->num_cells()) return false;
    for (const auto& [key, cell] : (*want)->cells()) {
      CellValue other = got.CellAt(key);
      if (cell.count != other.count || cell.sum != other.sum) return false;
    }
    return true;
  };

  // Phase 1: query stream under fault load, both shards alive.
  uint64_t retries_seen = 0;
  for (int q = 0; q < 15; ++q) {
    ScanStats stats;
    ExecControl ctl;
    ctl.stats_out = &stats;
    auto r = resilient.Execute(spec, ExecStrategy::kCounterBased, ctl);
    ASSERT_TRUE(r.ok()) << "query " << q << ": " << r.status().ToString();
    EXPECT_TRUE(identical(**r)) << "query " << q;
    retries_seen += stats.shard_rpc_retries;
  }
  const uint64_t send_fires =
      FailpointRegistry::Global().Fires("shard.rpc.send");
  EXPECT_GT(send_fires + retries_seen, 0u)
      << "fault load never actually fired";

  // Phase 2: SIGKILL shard 1 mid-stream.
  const pid_t victim = supervisor.pid(1);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(victim, SIGKILL), 0);
  const auto notice_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (supervisor.healthy(1) &&
         std::chrono::steady_clock::now() < notice_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_FALSE(supervisor.healthy(1)) << "supervisor never noticed SIGKILL";

  // The kill happened mid-stream with faults armed; phase 1 already
  // proved the stream's behavior under fault load. Disarm before the
  // policy assertions: with faults live, the HEALTHY shard can exhaust
  // its own retry budget and fail strict mode with the injected code
  // instead of the dead shard's kUnavailable — a coin-flip, not a test.
  FailpointRegistry::Global().DisarmAll();

  // Strict: the dead shard fails the query with kUnavailable.
  auto strict_r = strict.Execute(spec, ExecStrategy::kCounterBased);
  ASSERT_FALSE(strict_r.ok());
  EXPECT_EQ(strict_r.status().code(), StatusCode::kUnavailable)
      << strict_r.status().ToString();

  // Degraded without fallback: flagged partial, exactly shard 1 missing.
  {
    ScanStats stats;
    std::vector<size_t> missing;
    ExecControl ctl;
    ctl.stats_out = &stats;
    ctl.missing_shards = &missing;
    auto r = partial.Execute(spec, ExecStrategy::kCounterBased, ctl);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(missing.size(), 1u);
    EXPECT_EQ(missing[0], 1u);
    EXPECT_EQ(stats.partial_answers, 1u);
  }

  // Degraded with fallback: the stream continues bit-identically through
  // the dead window.
  for (int q = 0; q < 5; ++q) {
    auto r = resilient.Execute(spec, ExecStrategy::kCounterBased);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(identical(**r)) << "dead-window query " << q;
  }

  // Phase 3: the supervisor restarts the shard on its pinned port; even
  // strict mode answers bit-identically again.
  const auto heal_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!supervisor.healthy(1) &&
         std::chrono::steady_clock::now() < heal_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(supervisor.healthy(1)) << "shard 1 never restarted";
  EXPECT_GE(supervisor.restarts(), 1u);
  auto healed = strict.Execute(spec, ExecStrategy::kCounterBased);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_TRUE(identical(**healed)) << "post-restart strict answer";

  supervisor.Stop();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

#endif  // SOLAP_SHARD_MAIN_PATH

}  // namespace
}  // namespace solap
