// Unit tests for the inverted-index layer, validated against the paper's
// worked examples: Figure 10 (L1/L2 of the Fig. 8 group), Figure 13
// (the L2 ⋈ L2 join producing L3^(X,Y,Y) with verification), Figure 14
// (L4^(X,Y,Y,X)), the §4.2.2 P-ROLL-UP merge example, and the s6
// restricted-symbol caveat.
#include <gtest/gtest.h>

#include <algorithm>

#include "paper_fixtures.h"
#include "solap/index/build_index.h"
#include "solap/index/index_ops.h"

namespace solap {
namespace {

using testing::Fig8Hierarchies;
using testing::Fig8RawGroups;

class IndexTest : public ::testing::Test {
 protected:
  IndexTest() : set_(Fig8RawGroups()), reg_(Fig8Hierarchies()) {}

  Code C(const std::string& name) {
    Code c = set_->raw_dictionary().Lookup(name);
    EXPECT_NE(c, kNullCode) << name;
    return c;
  }
  PatternKey Key(std::vector<std::string> names) {
    PatternKey k;
    for (const auto& n : names) k.push_back(C(n));
    return k;
  }

  IndexShape Shape(size_t m, const std::string& level = "symbol",
                   PatternKind kind = PatternKind::kSubstring) {
    IndexShape s;
    s.kind = kind;
    s.positions.assign(m, LevelRef{"symbol", level});
    return s;
  }

  std::shared_ptr<InvertedIndex> Build(const IndexShape& shape) {
    auto r = BuildIndex(&set_->groups()[0], *set_, reg_.get(), shape,
                        &stats_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }

  BoundPattern BindTemplate(const PatternTemplate* t) {
    auto bp = BoundPattern::Bind(t, &set_->groups()[0], *set_, reg_.get(),
                                 nullptr, {});
    EXPECT_TRUE(bp.ok()) << bp.status().ToString();
    return *std::move(bp);
  }

  std::shared_ptr<SequenceGroupSet> set_;
  std::shared_ptr<HierarchyRegistry> reg_;
  ScanStats stats_;
};

// Figure 10, left column: L1.
TEST_F(IndexTest, BuildL1MatchesFigure10) {
  auto l1 = Build(Shape(1));
  EXPECT_TRUE(l1->complete());
  EXPECT_EQ(l1->num_lists(), 5u);
  // Sids: s1=0, s2=1, s3=2, s4=3.
  EXPECT_EQ(*l1->Find(Key({"Clarendon"})), (std::vector<Sid>{2, 3}));
  EXPECT_EQ(*l1->Find(Key({"Deanwood"})), (std::vector<Sid>{3}));
  EXPECT_EQ(*l1->Find(Key({"Glenmont"})), (std::vector<Sid>{0}));
  EXPECT_EQ(*l1->Find(Key({"Pentagon"})), (std::vector<Sid>{0, 1, 2}));
  EXPECT_EQ(*l1->Find(Key({"Wheaton"})), (std::vector<Sid>{0, 1, 3}));
}

// Figure 10, right column: L2 (the nine non-empty lists l1..l9).
TEST_F(IndexTest, BuildL2MatchesFigure10) {
  auto l2 = Build(Shape(2));
  EXPECT_EQ(l2->num_lists(), 9u);
  EXPECT_EQ(*l2->Find(Key({"Clarendon", "Deanwood"})), (std::vector<Sid>{3}));
  EXPECT_EQ(*l2->Find(Key({"Clarendon", "Pentagon"})), (std::vector<Sid>{2}));
  EXPECT_EQ(*l2->Find(Key({"Deanwood", "Wheaton"})), (std::vector<Sid>{3}));
  EXPECT_EQ(*l2->Find(Key({"Glenmont", "Pentagon"})), (std::vector<Sid>{0}));
  EXPECT_EQ(*l2->Find(Key({"Pentagon", "Pentagon"})), (std::vector<Sid>{0}));
  EXPECT_EQ(*l2->Find(Key({"Pentagon", "Wheaton"})),
            (std::vector<Sid>{0, 1}));
  EXPECT_EQ(*l2->Find(Key({"Wheaton", "Clarendon"})), (std::vector<Sid>{3}));
  EXPECT_EQ(*l2->Find(Key({"Wheaton", "Pentagon"})),
            (std::vector<Sid>{0, 1}));
  EXPECT_EQ(*l2->Find(Key({"Wheaton", "Wheaton"})), (std::vector<Sid>{0, 1}));
  EXPECT_EQ(l2->Find(Key({"Clarendon", "Clarendon"})), nullptr);
}

// Figures 13/14: joining L2 with itself under template (X,Y,Y,X).
TEST_F(IndexTest, JoinReproducesFigures13And14) {
  PatternDim dx{"X", {"symbol", "symbol"}, {}, ""};
  PatternDim dy{"Y", {"symbol", "symbol"}, {}, ""};
  auto t = PatternTemplate::Make(PatternKind::kSubstring,
                                 {"X", "Y", "Y", "X"}, {dx, dy});
  ASSERT_TRUE(t.ok());
  BoundPattern bp = BindTemplate(&*t);
  auto l2 = Build(Shape(2));

  // L3^(X,Y,Y) = L2^(X,Y) ⋈ L2^(Y,Y), then verify against the data.
  auto l3 = JoinExtendRight(*l2, *l2, *t, 0, bp, &stats_);
  ASSERT_TRUE(l3.ok()) << l3.status().ToString();
  // The paper's verification removes s1 from [P,P,P] and [W,P,P], and the
  // candidate [C,P,P] and [D,W,W] intersections come up empty, leaving:
  EXPECT_EQ(*(*l3)->Find(Key({"Glenmont", "Pentagon", "Pentagon"})),
            (std::vector<Sid>{0}));
  EXPECT_EQ(*(*l3)->Find(Key({"Pentagon", "Wheaton", "Wheaton"})),
            (std::vector<Sid>{0, 1}));
  EXPECT_EQ((*l3)->Find(Key({"Pentagon", "Pentagon", "Pentagon"})), nullptr);
  EXPECT_EQ((*l3)->Find(Key({"Wheaton", "Pentagon", "Pentagon"})), nullptr);
  EXPECT_EQ((*l3)->Find(Key({"Deanwood", "Wheaton", "Wheaton"})), nullptr);
  // The join was filtered by the repeated symbol (Y == Y): not complete.
  EXPECT_FALSE((*l3)->complete());
  EXPECT_FALSE((*l3)->constraint_sig().empty());

  // L4^(X,Y,Y,X) = L3 ⋈ L2^(Y,X): the single Fig. 14 list.
  auto l4 = JoinExtendRight(**l3, *l2, *t, 0, bp, &stats_);
  ASSERT_TRUE(l4.ok());
  EXPECT_EQ((*l4)->num_lists(), 1u);
  EXPECT_EQ(
      *(*l4)->Find(Key({"Pentagon", "Wheaton", "Wheaton", "Pentagon"})),
      (std::vector<Sid>{0, 1}));
}

TEST_F(IndexTest, JoinExtendLeftMirrorsRight) {
  PatternDim dx{"X", {"symbol", "symbol"}, {}, ""};
  PatternDim dy{"Y", {"symbol", "symbol"}, {}, ""};
  PatternDim dz{"Z", {"symbol", "symbol"}, {}, ""};
  auto t = PatternTemplate::Make(PatternKind::kSubstring, {"X", "Y", "Z"},
                                 {dx, dy, dz});
  ASSERT_TRUE(t.ok());
  BoundPattern bp = BindTemplate(&*t);
  auto l2 = Build(Shape(2));
  // Grow a suffix index covering [1,3) leftwards to [0,3).
  auto right = JoinExtendRight(*l2, *l2, *t, 0, bp, &stats_);
  ASSERT_TRUE(right.ok());
  auto left = JoinExtendLeft(*l2, *l2, *t, 0, bp, &stats_);
  ASSERT_TRUE(left.ok());
  // Both directions must produce identical unrestricted L3 content.
  EXPECT_EQ((*right)->num_lists(), (*left)->num_lists());
  for (const auto& [key, list] : (*right)->lists()) {
    const SidList* other = (*left)->Find(key);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(*other, list);
  }
  EXPECT_TRUE((*right)->complete());
  EXPECT_TRUE((*left)->complete());
}

// §4.2.2 P-ROLL-UP example: merging unrestricted L2 station lists to the
// district level; [Wheaton, D10] = l7 ∪ l8 = {s1, s2, s4} (count 3).
TEST_F(IndexTest, RollUpMergeMatchesPaperExample) {
  auto l2 = Build(Shape(2));
  auto* h = reg_->Find("symbol");
  ASSERT_NE(h, nullptr);
  std::vector<Code> map = h->LevelToLevel(set_->raw_dictionary(), 0, 1);
  IndexShape coarse2 = Shape(2);
  coarse2.positions[1].level = "district";
  auto merged =
      RollUpMerge(*l2, {std::vector<Code>{}, map}, coarse2, nullptr, nullptr, &stats_);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  Code wheaton = C("Wheaton");
  Code d10 = map[C("Pentagon")];
  EXPECT_EQ(map[C("Clarendon")], d10);
  const SidList* list = (*merged)->Find({wheaton, d10});
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(*list, (std::vector<Sid>{0, 1, 3}));  // {s1, s2, s4}
  EXPECT_TRUE((*merged)->complete());
}

// §4.2.2 caveat: the restricted L4^(X,Y,Y,X) index must NOT be merged —
// sequence s6 = <Pentagon, Wheaton, Wheaton, Clarendon> contains the
// district pattern (D10, D20, D20, D10) but no station-level (X,Y,Y,X).
TEST_F(IndexTest, RestrictedRollUpMergeIsRefused) {
  auto set = std::make_shared<SequenceGroupSet>("symbol");
  SequenceGroup& g = set->GroupFor({});
  std::vector<Code> s6;
  for (const char* name : {"Pentagon", "Wheaton", "Wheaton", "Clarendon"}) {
    s6.push_back(set->raw_dictionary().GetOrAdd(name));
  }
  g.AddSequence(s6);

  PatternDim dx{"X", {"symbol", "symbol"}, {}, ""};
  PatternDim dy{"Y", {"symbol", "symbol"}, {}, ""};
  auto t = PatternTemplate::Make(PatternKind::kSubstring,
                                 {"X", "Y", "Y", "X"}, {dx, dy});
  ASSERT_TRUE(t.ok());
  auto bp = BoundPattern::Bind(&*t, &g, *set, reg_.get(), nullptr, {});
  ASSERT_TRUE(bp.ok());

  IndexShape shape2;
  shape2.kind = PatternKind::kSubstring;
  shape2.positions.assign(2, LevelRef{"symbol", "symbol"});
  auto l2 = BuildIndex(&g, *set, reg_.get(), shape2, &stats_);
  ASSERT_TRUE(l2.ok());
  auto l3 = JoinExtendRight(**l2, **l2, *t, 0, *bp, &stats_);
  ASSERT_TRUE(l3.ok());
  auto l4 = JoinExtendRight(**l3, **l2, *t, 0, *bp, &stats_);
  ASSERT_TRUE(l4.ok());
  // Station level: s6 matches no (X,Y,Y,X) instantiation at all.
  EXPECT_EQ((*l4)->num_lists(), 0u);
  EXPECT_FALSE((*l4)->complete());
  // Merging this restricted index would lose s6 — RollUpMerge refuses.
  auto* h = reg_->Find("symbol");
  std::vector<Code> map = h->LevelToLevel(set->raw_dictionary(), 0, 1);
  IndexShape coarse = (*l4)->shape();
  for (auto& p : coarse.positions) p.level = "district";
  auto merged = RollUpMerge(**l4, std::vector<std::vector<Code>>(4, map),
                            coarse, nullptr, nullptr, &stats_);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IndexTest, DrillDownRefineInvertsRollUp) {
  // Build L2 at (station, district), then refine position 1 back to
  // station level; the result must equal the direct station-level L2.
  auto l2_fine = Build(Shape(2));
  auto* h = reg_->Find("symbol");
  std::vector<Code> map = h->LevelToLevel(set_->raw_dictionary(), 0, 1);
  IndexShape coarse2 = Shape(2);
  coarse2.positions[1].level = "district";
  auto coarse =
      RollUpMerge(*l2_fine, {std::vector<Code>{}, map}, coarse2, nullptr, nullptr, &stats_);
  ASSERT_TRUE(coarse.ok());

  PatternDim dx{"X", {"symbol", "symbol"}, {}, ""};
  PatternDim dy{"Y", {"symbol", "symbol"}, {}, ""};
  auto t = PatternTemplate::Make(PatternKind::kSubstring, {"X", "Y"},
                                 {dx, dy});
  ASSERT_TRUE(t.ok());
  BoundPattern bp = BindTemplate(&*t);
  auto refined = DrillDownRefine(**coarse, {std::vector<Code>{}, map}, bp,
                                 Shape(2), nullptr, &stats_);
  ASSERT_TRUE(refined.ok()) << refined.status().ToString();
  EXPECT_EQ((*refined)->num_lists(), l2_fine->num_lists());
  for (const auto& [key, list] : l2_fine->lists()) {
    const SidList* got = (*refined)->Find(key);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, list);
  }
}

TEST_F(IndexTest, SubsequenceIndexContainsGappedPatterns) {
  auto l2 = Build(Shape(2, "symbol", PatternKind::kSubsequence));
  // (Wheaton, Deanwood) never adjacent but s4 = <W,C,D,W> has it gapped.
  const SidList* list = l2->Find(Key({"Wheaton", "Deanwood"}));
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(*list, (std::vector<Sid>{3}));
}

TEST_F(IndexTest, ByteSizeAndEntriesAccounting) {
  auto l2 = Build(Shape(2));
  EXPECT_EQ(l2->total_entries(), 12u);  // sum of Fig. 10 list sizes
  // ByteSize reports the bytes actually held by the container layout
  // (struct + payload capacities + keys) — pin it to the per-list sum and
  // bound it below by the raw payload.
  size_t per_list_sum = 0;
  for (const auto& [key, list] : l2->lists()) {
    per_list_sum += key.size() * sizeof(Code) + list.ByteSize();
  }
  EXPECT_EQ(l2->ByteSize(), per_list_sum);
  EXPECT_GE(l2->ByteSize(),
            12 * sizeof(uint16_t) + 9 * 2 * sizeof(Code));
  EXPECT_GT(stats_.index_bytes_built, 0u);
  EXPECT_GT(stats_.lists_built, 0u);
}

TEST(IntersectUnionTest, SortedSetOps) {
  std::vector<Sid> a = {1, 3, 5, 7};
  std::vector<Sid> b = {3, 4, 5, 8};
  EXPECT_EQ(IntersectSorted(a, b), (std::vector<Sid>{3, 5}));
  EXPECT_EQ(UnionSorted(a, b), (std::vector<Sid>{1, 3, 4, 5, 7, 8}));
  EXPECT_TRUE(IntersectSorted({}, b).empty());
  EXPECT_EQ(UnionSorted({}, b), b);
}

}  // namespace
}  // namespace solap
