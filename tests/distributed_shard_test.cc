// The distributed execution tier (DESIGN.md §10): shard-server processes
// (tools/shard_main.cc) behind RemoteShardClient must be INVISIBLE when
// healthy — a QuerySet-A session over two real shard processes returns
// cuboids bit-identical to the PR 8 in-process scatter — and must degrade
// exactly as configured when they are not: strict mode fails the query
// with kUnavailable, degraded mode either re-executes the dead slice on
// the local fallback (bit-identical again) or answers without it and
// flags the missing shards, and the supervisor restarts a SIGKILLed
// process and restores full answers. Drain and cancel must both resolve
// in-flight scattered RPCs without leaking pool tasks.
#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "solap/engine/engine.h"
#include "solap/engine/operations.h"
#include "solap/engine/shard_partition.h"
#include "solap/engine/sharded_engine.h"
#include "solap/gen/transit.h"
#include "solap/net/http_client.h"
#include "solap/net/query_routes.h"
#include "solap/net/server.h"
#include "solap/net/shard_routes.h"
#include "solap/service/query_service.h"
#include "solap/service/shard_supervisor.h"
#include "solap/storage/hierarchy_io.h"
#include "solap/storage/io.h"

namespace solap {
namespace {

using std::chrono::milliseconds;

uint64_t Bits(double d) {
  uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

/// BIT-identical cells: the distributed path must reproduce the in-process
/// scatter exactly, including the FP SUM fold (ascending shard order on
/// both sides, bits-on-the-wire transport).
void ExpectBitIdentical(const SCuboid& a, const SCuboid& b,
                        const std::string& what) {
  ASSERT_EQ(a.num_cells(), b.num_cells()) << what;
  for (const auto& [key, cell] : a.cells()) {
    CellValue other = b.CellAt(key);
    EXPECT_EQ(cell.count, other.count) << what;
    EXPECT_EQ(Bits(cell.sum), Bits(other.sum)) << what;
    EXPECT_EQ(Bits(cell.min), Bits(other.min)) << what;
    EXPECT_EQ(Bits(cell.max), Bits(other.max)) << what;
  }
}

TransitData SmallTransit() {
  TransitParams p;
  p.num_passengers = 300;
  p.num_days = 2;
  p.seed = 11;
  return GenerateTransit(p);
}

/// FP SUM pair query over stations — the spec whose merged sum would
/// expose any non-bit-exact transport.
CuboidSpec TransitSpec() {
  CuboidSpec spec;
  spec.agg = AggKind::kSum;
  spec.measure = "amount";
  spec.seq.cluster_by = {{"card-id", "individual"}};
  spec.seq.sequence_by = "time";
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {"location", "station"}, {}, ""},
               PatternDim{"Y", {"location", "station"}, {}, ""}};
  return spec;
}

EngineOptions CoordinatorOpts() {
  EngineOptions o;
  o.shards = 2;
  o.shard_by = "card-id";
  o.exec_threads = 2;
  return o;
}

bool WaitFor(const std::function<bool()>& pred, milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(milliseconds(10));
  }
  return true;
}

/// A port that was just bound and released — nothing listens there, so
/// connects fail fast with ECONNREFUSED (the dead-shard stand-in).
uint16_t DeadPort() {
  net::HttpServerOptions opts;
  net::HttpServer probe(net::Router{}, opts);
  if (!probe.Start().ok()) return 1;
  const uint16_t port = probe.port();
  probe.Stop();
  return port;
}

RemoteShardOptions FastRpc() {
  RemoteShardOptions rpc;
  rpc.retry.max_attempts = 2;
  rpc.retry.initial_backoff = milliseconds(1);
  rpc.retry.max_backoff = milliseconds(5);
  rpc.default_timeout = milliseconds(5000);
  return rpc;
}

// -- In-test shard servers (no child processes) ------------------------------
//
// Two real HttpServers over the two slices of a partitioned table: the
// full remote data path (encode spec -> HTTP -> decode -> execute ->
// encode partial -> HTTP -> decode) without fork/exec, so failure shapes
// can be staged deterministically.
struct LocalCluster {
  TransitData data;
  std::vector<std::unique_ptr<EventTable>> slices;
  std::vector<std::unique_ptr<SOlapEngine>> engines;
  std::vector<std::unique_ptr<net::HttpServer>> servers;
  std::vector<ShardEndpoint> endpoints;

  explicit LocalCluster(size_t n, net::Router (*wrap)(net::Router) = nullptr) {
    data = SmallTransit();
    const EventTable* table = data.table.get();
    const int col = ResolveShardColumn(*table, "card-id");
    EXPECT_GE(col, 0);
    slices = table->PartitionRows(n, [table, col, n](RowId r) {
      return ShardOfCode(table->CodeAt(r, col), n);
    });
    EngineOptions opts;
    opts.exec_threads = 1;
    opts.cb_threads = 1;
    opts.repository_capacity_bytes = 0;
    for (size_t i = 0; i < n; ++i) {
      engines.push_back(std::make_unique<SOlapEngine>(
          slices[i].get(), data.hierarchies.get(), opts));
      net::Router router = net::BuildShardRouter(engines.back().get());
      if (wrap != nullptr) router = wrap(std::move(router));
      auto server = std::make_unique<net::HttpServer>(
          std::move(router), net::HttpServerOptions{});
      EXPECT_TRUE(server->Start().ok());
      endpoints.push_back(ShardEndpoint{"127.0.0.1", server->port()});
      servers.push_back(std::move(server));
    }
  }

  ~LocalCluster() {
    for (auto& s : servers) s->Stop();
  }
};

TEST(DistributedShard, LoopbackServersBitIdenticalToInProcess) {
  LocalCluster cluster(2);
  ShardedEngine in_process(cluster.data.table.get(),
                           cluster.data.hierarchies.get(), CoordinatorOpts());
  ShardedEngine distributed(cluster.data.table.get(),
                            cluster.data.hierarchies.get(), CoordinatorOpts());
  ASSERT_TRUE(
      distributed.EnableRemoteScatter(cluster.endpoints, FastRpc()).ok());

  const CuboidSpec spec = TransitSpec();
  for (ExecStrategy s :
       {ExecStrategy::kCounterBased, ExecStrategy::kInvertedIndex}) {
    ScanStats in_stats, dist_stats;
    ExecControl in_ctl, dist_ctl;
    in_ctl.stats_out = &in_stats;
    dist_ctl.stats_out = &dist_stats;
    auto a = in_process.Execute(spec, s, in_ctl);
    auto b = distributed.Execute(spec, s, dist_ctl);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ExpectBitIdentical(**a, **b, "loopback vs in-process");
    // The shard-side ScanStats travel on the wire and must sum to the
    // same totals the in-process scatter accumulates.
    EXPECT_EQ(in_stats.sequences_scanned, dist_stats.sequences_scanned);
    EXPECT_EQ(in_stats.shard_partials, dist_stats.shard_partials);
    EXPECT_TRUE(dist_stats.shard_rpc_retries == 0u)
        << "healthy cluster must not retry";
  }
}

TEST(DistributedShard, StrictModeFailsWithUnavailableWhenShardDead) {
  LocalCluster cluster(2);
  ShardedEngine distributed(cluster.data.table.get(),
                            cluster.data.hierarchies.get(), CoordinatorOpts());
  std::vector<ShardEndpoint> endpoints = cluster.endpoints;
  endpoints[1].port = DeadPort();  // shard 1 is down from the start
  ASSERT_TRUE(distributed
                  .EnableRemoteScatter(endpoints, FastRpc(),
                                       DegradePolicy::kStrict)
                  .ok());
  ScanStats stats;
  ExecControl ctl;
  ctl.stats_out = &stats;
  auto r = distributed.Execute(TransitSpec(), ExecStrategy::kCounterBased,
                               ctl);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable)
      << r.status().ToString();
  // The retry budget was spent before giving up (max_attempts=2 -> 1
  // retry against the dead port).
  EXPECT_EQ(stats.shard_rpc_retries, 1u);
  EXPECT_EQ(stats.partial_answers, 0u);
}

TEST(DistributedShard, DegradedLocalFallbackIsBitIdentical) {
  LocalCluster cluster(2);
  ShardedEngine in_process(cluster.data.table.get(),
                           cluster.data.hierarchies.get(), CoordinatorOpts());
  ShardedEngine distributed(cluster.data.table.get(),
                            cluster.data.hierarchies.get(), CoordinatorOpts());
  std::vector<ShardEndpoint> endpoints = cluster.endpoints;
  endpoints[1].port = DeadPort();
  ASSERT_TRUE(distributed
                  .EnableRemoteScatter(endpoints, FastRpc(),
                                       DegradePolicy::kDegraded,
                                       /*local_fallback=*/true)
                  .ok());
  ScanStats stats;
  std::vector<size_t> missing;
  ExecControl ctl;
  ctl.stats_out = &stats;
  ctl.missing_shards = &missing;
  auto want =
      in_process.Execute(TransitSpec(), ExecStrategy::kCounterBased);
  auto got =
      distributed.Execute(TransitSpec(), ExecStrategy::kCounterBased, ctl);
  ASSERT_TRUE(want.ok() && got.ok()) << got.status().ToString();
  // The local fallback re-executes the SAME slice with the same code:
  // nothing is missing and the answer is complete and exact.
  ExpectBitIdentical(**want, **got, "degraded local fallback");
  EXPECT_TRUE(missing.empty());
  EXPECT_EQ(stats.degraded_queries, 1u);
  EXPECT_EQ(stats.partial_answers, 0u);
}

TEST(DistributedShard, DegradedPartialAnswerFlagsMissingShards) {
  LocalCluster cluster(2);
  ShardedEngine distributed(cluster.data.table.get(),
                            cluster.data.hierarchies.get(), CoordinatorOpts());
  std::vector<ShardEndpoint> endpoints = cluster.endpoints;
  endpoints[1].port = DeadPort();
  ASSERT_TRUE(distributed
                  .EnableRemoteScatter(endpoints, FastRpc(),
                                       DegradePolicy::kDegraded,
                                       /*local_fallback=*/false)
                  .ok());
  for (int round = 0; round < 2; ++round) {
    ScanStats stats;
    std::vector<size_t> missing;
    ExecControl ctl;
    ctl.stats_out = &stats;
    ctl.missing_shards = &missing;
    auto r = distributed.Execute(TransitSpec(), ExecStrategy::kCounterBased,
                                 ctl);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(missing.size(), 1u);
    EXPECT_EQ(missing[0], 1u);
    EXPECT_EQ(stats.partial_answers, 1u);
    EXPECT_GT((*r)->num_cells(), 0u);
    // A partial answer must never be cached as if complete: the repeat
    // query re-executes (no repository hit) and is partial again.
    EXPECT_EQ(stats.repository_hits, 0u) << "round " << round;
  }
}

TEST(DistributedShard, AllShardsDeadIsUnavailableEvenDegraded) {
  LocalCluster cluster(2);
  ShardedEngine distributed(cluster.data.table.get(),
                            cluster.data.hierarchies.get(), CoordinatorOpts());
  std::vector<ShardEndpoint> endpoints = cluster.endpoints;
  endpoints[0].port = DeadPort();
  endpoints[1].port = DeadPort();
  ASSERT_TRUE(distributed
                  .EnableRemoteScatter(endpoints, FastRpc(),
                                       DegradePolicy::kDegraded,
                                       /*local_fallback=*/false)
                  .ok());
  auto r = distributed.Execute(TransitSpec(), ExecStrategy::kCounterBased);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST(DistributedShard, UnhealthyMarkSkipsRpcAndFailsFast) {
  LocalCluster cluster(2);
  ShardedEngine distributed(cluster.data.table.get(),
                            cluster.data.hierarchies.get(), CoordinatorOpts());
  ASSERT_TRUE(distributed
                  .EnableRemoteScatter(cluster.endpoints, FastRpc(),
                                       DegradePolicy::kDegraded,
                                       /*local_fallback=*/true)
                  .ok());
  distributed.SetShardHealthy(1, false);
  ScanStats stats;
  ExecControl ctl;
  ctl.stats_out = &stats;
  auto r =
      distributed.Execute(TransitSpec(), ExecStrategy::kCounterBased, ctl);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // No RPC was attempted against the degraded shard — no retries burned —
  // and the local fallback answered for it.
  EXPECT_EQ(stats.shard_rpc_retries, 0u);
  EXPECT_EQ(stats.degraded_queries, 1u);
}

// -- Drain / cancel vs in-flight scatter -------------------------------------

/// Gate shared by the wrapped shard router: the handler blocks every
/// /shard/exec until Release (healthz passes through).
struct ExecGate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::atomic<int> blocked{0};

  void Await() {
    blocked.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return open; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu);
    open = true;
    cv.notify_all();
  }
};

ExecGate* g_gate = nullptr;

net::Router GatedWrap(net::Router inner) {
  auto shared = std::make_shared<net::Router>(std::move(inner));
  net::Router outer;
  outer.Handle("POST", "/shard/exec", [shared](const net::HttpRequest& req) {
    g_gate->Await();
    return shared->Dispatch(req);
  });
  outer.Handle("GET", "/healthz", [](const net::HttpRequest&) {
    return net::TextResponse(200, "ok\n");
  });
  return outer;
}

TEST(DistributedShard, DrainMidScatterLetsInFlightRpcsFinish) {
  ExecGate gate;
  g_gate = &gate;
  LocalCluster cluster(2, GatedWrap);
  ShardedEngine distributed(cluster.data.table.get(),
                            cluster.data.hierarchies.get(), CoordinatorOpts());
  ASSERT_TRUE(
      distributed.EnableRemoteScatter(cluster.endpoints, FastRpc()).ok());
  ServiceOptions sopts;
  sopts.num_threads = 2;
  QueryService service(&distributed, sopts);

  // Submit; both shard RPCs park at the gate.
  QueryService::Ticket in_flight = service.Submit(TransitSpec());
  ASSERT_TRUE(WaitFor([&] { return gate.blocked.load() >= 2; },
                      milliseconds(5000)))
      << "scatter RPCs never reached the shard servers";

  // Drain mid-scatter: new work sheds with the lame-duck code...
  service.BeginDrain();
  QueryResponse shed = service.Run(TransitSpec());
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);

  // ...while the in-flight scattered query runs to completion once its
  // RPCs are released, and the service reaches idle (no leaked tasks).
  gate.Release();
  QueryResponse done = in_flight.response.get();
  EXPECT_TRUE(done.status.ok()) << done.status.ToString();
  EXPECT_NE(done.cuboid, nullptr);
  EXPECT_TRUE(service.WaitIdle(milliseconds(5000)));
  g_gate = nullptr;
}

TEST(DistributedShard, CancelMidScatterAbortsInFlightRpcs) {
  ExecGate gate;
  g_gate = &gate;
  LocalCluster cluster(2, GatedWrap);
  ShardedEngine distributed(cluster.data.table.get(),
                            cluster.data.hierarchies.get(), CoordinatorOpts());
  ASSERT_TRUE(
      distributed.EnableRemoteScatter(cluster.endpoints, FastRpc()).ok());
  ServiceOptions sopts;
  sopts.num_threads = 2;
  QueryService service(&distributed, sopts);

  QueryService::Ticket ticket = service.Submit(TransitSpec());
  ASSERT_TRUE(WaitFor([&] { return gate.blocked.load() >= 2; },
                      milliseconds(5000)));
  // The gate stays CLOSED: the only way the query can resolve is the stop
  // token aborting the in-flight exchanges client-side.
  ticket.canceller->RequestStop();
  QueryResponse resp = ticket.response.get();
  EXPECT_EQ(resp.status.code(), StatusCode::kCancelled)
      << resp.status.ToString();
  EXPECT_TRUE(service.WaitIdle(milliseconds(5000)));
  // Unblock the parked server handlers so teardown can join them.
  gate.Release();
  g_gate = nullptr;
}

// -- Real shard processes under the supervisor -------------------------------

#ifdef SOLAP_SHARD_MAIN_PATH

struct ProcessCluster {
  TransitData data;
  std::string dir;
  std::unique_ptr<ShardSupervisor> supervisor;

  explicit ProcessCluster(size_t n,
                          ShardSupervisorOptions sup_opts = {}) {
    data = SmallTransit();
    dir = ::testing::TempDir() + "solap_dist_" +
          std::to_string(::getpid()) + "_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir);
    const std::string table_path = dir + "/table.solap";
    const std::string hier_path = dir + "/hier.json";
    EXPECT_TRUE(SaveTable(*data.table, table_path).ok());
    EXPECT_TRUE(SaveHierarchies(*data.hierarchies, hier_path).ok());

    std::vector<ShardProcessSpec> specs;
    for (size_t i = 0; i < n; ++i) {
      ShardProcessSpec spec;
      spec.args = {SOLAP_SHARD_MAIN_PATH,
                   "--table",      table_path,
                   "--hier",       hier_path,
                   "--shard",      std::to_string(i),
                   "--num-shards", std::to_string(n),
                   "--shard-by",   "card-id"};
      spec.port_file = dir + "/shard" + std::to_string(i) + ".port";
      specs.push_back(std::move(spec));
    }
    supervisor = std::make_unique<ShardSupervisor>(std::move(specs),
                                                   sup_opts);
  }

  ~ProcessCluster() {
    if (supervisor) supervisor->Stop();
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
};

/// QuerySet-A-style iterative session over the transit table: slice the
/// previous top cell, append a fresh station position, re-run.
std::vector<std::shared_ptr<const SCuboid>> RunTransitQa(
    ShardedEngine& engine, size_t num_queries) {
  std::vector<std::shared_ptr<const SCuboid>> out;
  CuboidSpec spec = TransitSpec();
  const LevelRef append_ref{"location", "station"};
  for (size_t q = 0; q < num_queries; ++q) {
    if (q > 0) {
      CellKey top = out.back()->ArgMaxCell();
      if (top.empty()) break;
      auto sliced = ops::SliceToCell(spec, *out.back(), top);
      if (!sliced.ok()) {
        ADD_FAILURE() << sliced.status().ToString();
        break;
      }
      auto appended = ops::Append(*sliced, "S" + std::to_string(q),
                                  append_ref);
      if (!appended.ok()) {
        ADD_FAILURE() << appended.status().ToString();
        break;
      }
      spec = *appended;
    }
    auto r = engine.Execute(spec, ExecStrategy::kAuto);
    if (!r.ok()) {
      ADD_FAILURE() << "QA" << (q + 1) << ": " << r.status().ToString();
      break;
    }
    out.push_back(*r);
  }
  return out;
}

TEST(DistributedShardProcess, QaSessionBitIdenticalToInProcess) {
  ProcessCluster cluster(2);
  ASSERT_TRUE(cluster.supervisor != nullptr);
  Status started = cluster.supervisor->Start();
  ASSERT_TRUE(started.ok()) << started.ToString();

  ShardedEngine in_process(cluster.data.table.get(),
                           cluster.data.hierarchies.get(), CoordinatorOpts());
  ShardedEngine distributed(cluster.data.table.get(),
                            cluster.data.hierarchies.get(), CoordinatorOpts());
  ASSERT_TRUE(distributed
                  .EnableRemoteScatter(cluster.supervisor->endpoints(),
                                       FastRpc())
                  .ok());

  auto want = RunTransitQa(in_process, 5);
  auto got = RunTransitQa(distributed, 5);
  ASSERT_GE(want.size(), 2u) << "session died too early to mean anything";
  ASSERT_EQ(want.size(), got.size());
  for (size_t q = 0; q < want.size(); ++q) {
    ExpectBitIdentical(*want[q], *got[q],
                       "QA" + std::to_string(q + 1) + " process cluster");
  }
  EXPECT_EQ(in_process.StatsSnapshot().sequences_scanned,
            distributed.StatsSnapshot().sequences_scanned);
}

TEST(DistributedShardProcess, SupervisorRestartsKilledShard) {
  ShardSupervisorOptions sup_opts;
  sup_opts.poll_interval = milliseconds(50);
  sup_opts.restart_backoff = milliseconds(100);
  ProcessCluster cluster(2, sup_opts);
  ASSERT_TRUE(cluster.supervisor != nullptr);
  ShardSupervisor& sup = *cluster.supervisor;
  ASSERT_TRUE(sup.Start().ok());

  ShardedEngine in_process(cluster.data.table.get(),
                           cluster.data.hierarchies.get(), CoordinatorOpts());
  ShardedEngine distributed(cluster.data.table.get(),
                            cluster.data.hierarchies.get(), CoordinatorOpts());
  ASSERT_TRUE(distributed
                  .EnableRemoteScatter(sup.endpoints(), FastRpc(),
                                       DegradePolicy::kDegraded,
                                       /*local_fallback=*/true)
                  .ok());
  sup.SetHealthCallback([&](size_t shard, bool healthy) {
    distributed.SetShardHealthy(shard, healthy);
  });

  auto want = in_process.Execute(TransitSpec(), ExecStrategy::kCounterBased);
  ASSERT_TRUE(want.ok());

  // Baseline: healthy cluster answers exactly.
  auto before = distributed.Execute(TransitSpec(),
                                    ExecStrategy::kCounterBased);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  ExpectBitIdentical(**want, **before, "before kill");

  // SIGKILL shard 1 mid-life. The supervisor notices, flips health, and
  // the degraded engine still answers exactly via the local fallback.
  const pid_t victim = sup.pid(1);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(victim, SIGKILL), 0);
  ASSERT_TRUE(WaitFor([&] { return !sup.healthy(1); }, milliseconds(10000)))
      << "supervisor never noticed the kill";
  auto during = distributed.Execute(TransitSpec(),
                                    ExecStrategy::kCounterBased);
  ASSERT_TRUE(during.ok()) << during.status().ToString();
  ExpectBitIdentical(**want, **during, "while shard 1 dead");

  // The supervisor restarts the process with its slice on the SAME port;
  // answers return to the full remote path, still bit-identical.
  ASSERT_TRUE(WaitFor([&] { return sup.healthy(1); }, milliseconds(15000)))
      << "shard 1 never came back";
  EXPECT_GE(sup.restarts(), 1u);
  ASSERT_TRUE(WaitFor([&] { return sup.pid(1) != victim; },
                      milliseconds(1000)));
  auto after = distributed.Execute(TransitSpec(),
                                   ExecStrategy::kCounterBased);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ExpectBitIdentical(**want, **after, "after restart");

  // The health callback targets `distributed`, which dies before the
  // cluster's own Stop() in ~ProcessCluster — quiesce the monitor first.
  sup.Stop();
}

#endif  // SOLAP_SHARD_MAIN_PATH

// -- The partial-answer header end to end ------------------------------------

TEST(DistributedShard, PartialAnswerHeaderOnQueryRoute) {
  LocalCluster cluster(2);
  ShardedEngine distributed(cluster.data.table.get(),
                            cluster.data.hierarchies.get(), CoordinatorOpts());
  std::vector<ShardEndpoint> endpoints = cluster.endpoints;
  endpoints[1].port = DeadPort();
  ASSERT_TRUE(distributed
                  .EnableRemoteScatter(endpoints, FastRpc(),
                                       DegradePolicy::kDegraded,
                                       /*local_fallback=*/false)
                  .ok());
  QueryService service(&distributed);
  net::HttpServer front(net::BuildSolapRouter(&service),
                        net::HttpServerOptions{});
  ASSERT_TRUE(front.Start().ok());

  const std::string query =
      "SELECT SUM(amount) FROM S CLUSTER BY card-id AT individual "
      "SEQUENCE BY time CUBOID BY SUBSTRING (X, Y) "
      "WITH X AS location AT station, Y AS location AT station "
      "ALL-MATCHED";
  auto resp = net::HttpExchange(
      "127.0.0.1", front.port(), "POST", "/query", query, {},
      std::chrono::steady_clock::now() + std::chrono::seconds(30));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  front.Stop();
  ASSERT_EQ(resp->status, 200) << resp->body;
  const std::string* partial = resp->FindHeader("x-solap-partial");
  ASSERT_NE(partial, nullptr)
      << "degraded partial answer must carry X-Solap-Partial";
  EXPECT_EQ(*partial, "1");
}

}  // namespace
}  // namespace solap
