// Property-based tests over randomized synthetic data (parameterized gtest
// sweeps). The central invariant is the paper's implicit correctness claim:
// the counter-based and inverted-index strategies compute the SAME S-cuboid
// for every specification. Further invariants: index derivation paths
// (roll-up merge, drill-down refine, prefix/suffix joins) agree with direct
// computation, incremental update equals rebuild, and the subsequence
// matcher agrees with a brute-force oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <set>

#include "solap/engine/engine.h"
#include "solap/engine/operations.h"
#include "solap/gen/synthetic.h"
#include "solap/gen/transit.h"

namespace solap {
namespace {

struct Scenario {
  const char* name;
  PatternKind kind;
  std::vector<std::string> symbols;
  std::vector<std::string> levels;  // per distinct symbol, in first-seen order
  CellRestriction restriction;
  double theta;
};

std::ostream& operator<<(std::ostream& os, const Scenario& s) {
  return os << s.name;
}

CuboidSpec SpecFor(const Scenario& sc, const SyntheticData& data) {
  CuboidSpec spec;
  spec.kind = sc.kind;
  spec.symbols = sc.symbols;
  spec.restriction = sc.restriction;
  std::vector<std::string> seen;
  for (const std::string& sym : sc.symbols) {
    if (std::find(seen.begin(), seen.end(), sym) != seen.end()) continue;
    spec.dims.push_back(PatternDim{
        sym, {SyntheticData::kAttr, sc.levels[seen.size()]}, {}, ""});
    seen.push_back(sym);
  }
  (void)data;
  return spec;
}

void ExpectCuboidsEqual(const SCuboid& a, const SCuboid& b,
                        const char* what) {
  EXPECT_EQ(a.num_cells(), b.num_cells()) << what;
  for (const auto& [key, cell] : a.cells()) {
    EXPECT_EQ(b.CellAt(key).count, cell.count) << what;
  }
}

class StrategyEquivalence : public ::testing::TestWithParam<Scenario> {};

TEST_P(StrategyEquivalence, CounterBasedEqualsInvertedIndex) {
  const Scenario& sc = GetParam();
  SyntheticParams p;
  p.num_sequences = 400;
  p.num_symbols = 20;
  p.mean_length = 8;
  p.theta = sc.theta;
  p.num_groups = 5;
  p.num_supergroups = 2;
  SyntheticData data = GenerateSynthetic(p);
  CuboidSpec spec = SpecFor(sc, data);

  SOlapEngine cb_engine(data.groups, data.hierarchies.get());
  SOlapEngine ii_engine(data.groups, data.hierarchies.get());
  auto cb = cb_engine.Execute(spec, ExecStrategy::kCounterBased);
  ASSERT_TRUE(cb.ok()) << cb.status().ToString();
  auto ii = ii_engine.Execute(spec, ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(ii.ok()) << ii.status().ToString();
  ExpectCuboidsEqual(**cb, **ii, sc.name);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, StrategyEquivalence,
    ::testing::Values(
        Scenario{"xy_base", PatternKind::kSubstring, {"X", "Y"},
                 {"symbol", "symbol"}, CellRestriction::kLeftMaxMatchedGo,
                 0.9},
        Scenario{"xx_repeated", PatternKind::kSubstring, {"X", "X"},
                 {"symbol"}, CellRestriction::kLeftMaxMatchedGo, 0.9},
        Scenario{"xyz_triple", PatternKind::kSubstring, {"X", "Y", "Z"},
                 {"symbol", "symbol", "symbol"},
                 CellRestriction::kLeftMaxMatchedGo, 0.9},
        Scenario{"xyyx_roundtrip", PatternKind::kSubstring,
                 {"X", "Y", "Y", "X"}, {"symbol", "symbol"},
                 CellRestriction::kLeftMaxMatchedGo, 0.9},
        Scenario{"xy_group_level", PatternKind::kSubstring, {"X", "Y"},
                 {"group", "group"}, CellRestriction::kLeftMaxMatchedGo,
                 0.9},
        Scenario{"xy_mixed_levels", PatternKind::kSubstring, {"X", "Y"},
                 {"symbol", "supergroup"},
                 CellRestriction::kLeftMaxMatchedGo, 0.9},
        Scenario{"xy_all_matched", PatternKind::kSubstring, {"X", "Y"},
                 {"symbol", "symbol"}, CellRestriction::kAllMatchedGo, 0.9},
        Scenario{"xy_data_go", PatternKind::kSubstring, {"X", "Y"},
                 {"symbol", "symbol"}, CellRestriction::kLeftMaxDataGo,
                 0.9},
        Scenario{"xy_flat_skew", PatternKind::kSubstring, {"X", "Y"},
                 {"symbol", "symbol"}, CellRestriction::kLeftMaxMatchedGo,
                 0.5},
        Scenario{"xy_heavy_skew", PatternKind::kSubstring, {"X", "Y"},
                 {"symbol", "symbol"}, CellRestriction::kLeftMaxMatchedGo,
                 1.2},
        Scenario{"subseq_xy", PatternKind::kSubsequence, {"X", "Y"},
                 {"symbol", "symbol"}, CellRestriction::kLeftMaxMatchedGo,
                 0.9},
        Scenario{"subseq_xx", PatternKind::kSubsequence, {"X", "X"},
                 {"symbol"}, CellRestriction::kAllMatchedGo, 0.9}),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return info.param.name;
    });

class SlicedEquivalence : public ::testing::TestWithParam<Scenario> {};

TEST_P(SlicedEquivalence, SliceAppendFlowAgreesAcrossStrategies) {
  const Scenario& sc = GetParam();
  SyntheticParams p;
  p.num_sequences = 300;
  p.num_symbols = 15;
  p.mean_length = 8;
  p.theta = sc.theta;
  SyntheticData data = GenerateSynthetic(p);
  CuboidSpec spec = SpecFor(sc, data);

  SOlapEngine engine(data.groups, data.hierarchies.get());
  auto first = engine.Execute(spec, ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  CellKey top = (*first)->ArgMaxCell();
  ASSERT_FALSE(top.empty());
  auto sliced = ops::SliceToCell(spec, **first, top);
  ASSERT_TRUE(sliced.ok());
  auto appended =
      ops::Append(*sliced, "W", {SyntheticData::kAttr, "symbol"});
  ASSERT_TRUE(appended.ok());

  auto ii = engine.Execute(*appended, ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(ii.ok()) << ii.status().ToString();
  SOlapEngine cb_engine(data.groups, data.hierarchies.get());
  auto cb = cb_engine.Execute(*appended, ExecStrategy::kCounterBased);
  ASSERT_TRUE(cb.ok());
  ExpectCuboidsEqual(**cb, **ii, sc.name);
}

INSTANTIATE_TEST_SUITE_P(
    SliceScenarios, SlicedEquivalence,
    ::testing::Values(
        Scenario{"slice_xy", PatternKind::kSubstring, {"X", "Y"},
                 {"symbol", "symbol"}, CellRestriction::kLeftMaxMatchedGo,
                 0.9},
        Scenario{"slice_xyyx", PatternKind::kSubstring, {"X", "Y", "Y", "X"},
                 {"symbol", "symbol"}, CellRestriction::kLeftMaxMatchedGo,
                 0.9},
        Scenario{"slice_group", PatternKind::kSubstring, {"X", "Y"},
                 {"group", "group"}, CellRestriction::kLeftMaxMatchedGo,
                 0.9}),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return info.param.name;
    });

// P-ROLL-UP and P-DRILL-DOWN answered through index derivation must equal
// direct counter-based computation at the target level.
TEST(DerivationProperty, RollUpThenDrillDownAgreesWithDirect) {
  SyntheticParams p;
  p.num_sequences = 400;
  p.num_symbols = 20;
  p.mean_length = 8;
  p.num_groups = 5;
  p.num_supergroups = 2;
  SyntheticData data = GenerateSynthetic(p);

  CuboidSpec fine;
  fine.symbols = {"X", "Y"};
  fine.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""},
               PatternDim{"Y", {SyntheticData::kAttr, "symbol"}, {}, ""}};

  SOlapEngine engine(data.groups, data.hierarchies.get());
  auto base = engine.Execute(fine, ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(base.ok());

  // Roll Y up to group level: served by merging the cached L2.
  auto up = ops::PRollUp(fine, "Y", *data.hierarchies);
  ASSERT_TRUE(up.ok());
  uint64_t scans_before = engine.stats().sequences_scanned;
  auto rolled = engine.Execute(*up, ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(rolled.ok());
  // Merging lists requires no data-sequence scan at all.
  EXPECT_EQ(engine.stats().sequences_scanned, scans_before);

  SOlapEngine direct(data.groups, data.hierarchies.get());
  auto expect = direct.Execute(*up, ExecStrategy::kCounterBased);
  ASSERT_TRUE(expect.ok());
  ExpectCuboidsEqual(**expect, **rolled, "rollup");

  // Drill back down on a fresh engine that only has the coarse index.
  SOlapEngine engine2(data.groups, data.hierarchies.get());
  auto coarse = engine2.Execute(*up, ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(coarse.ok());
  auto drilled = engine2.Execute(fine, ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(drilled.ok());
  ExpectCuboidsEqual(**base, **drilled, "drilldown");
}

TEST(IncrementalProperty, RepeatedBatchesMatchRebuild) {
  SyntheticParams p;
  p.num_sequences = 200;
  p.num_symbols = 12;
  p.mean_length = 6;
  SyntheticData data = GenerateSynthetic(p);
  CuboidSpec spec;
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""},
               PatternDim{"Y", {SyntheticData::kAttr, "symbol"}, {}, ""}};

  SOlapEngine engine(data.groups, data.hierarchies.get());
  ASSERT_TRUE(engine.Execute(spec, ExecStrategy::kInvertedIndex).ok());
  for (uint64_t batch = 0; batch < 3; ++batch) {
    auto delta = GenerateSyntheticBatch(p, 50, 1000 + batch);
    ASSERT_TRUE(engine.AppendRawSequences(0, delta).ok());
    auto incremental = engine.Execute(spec, ExecStrategy::kInvertedIndex);
    ASSERT_TRUE(incremental.ok());
    SOlapEngine fresh(data.groups, data.hierarchies.get());
    auto rebuilt = fresh.Execute(spec, ExecStrategy::kCounterBased);
    ASSERT_TRUE(rebuilt.ok());
    ExpectCuboidsEqual(**rebuilt, **incremental, "incremental");
  }
}

// SUM aggregation must agree across strategies on table-backed data, for
// every cell restriction.
TEST(AggregateProperty, SumAgreesAcrossStrategiesAndRestrictions) {
  TransitParams p;
  p.num_passengers = 150;
  p.num_days = 2;
  TransitData data = GenerateTransit(p);
  for (CellRestriction restriction :
       {CellRestriction::kLeftMaxMatchedGo, CellRestriction::kLeftMaxDataGo,
        CellRestriction::kAllMatchedGo}) {
    CuboidSpec spec;
    spec.agg = AggKind::kSum;
    spec.measure = "amount";
    spec.restriction = restriction;
    spec.seq.cluster_by = {{"card-id", "individual"}, {"time", "day"}};
    spec.seq.sequence_by = "time";
    spec.symbols = {"X", "Y"};
    spec.dims = {PatternDim{"X", {"location", "station"}, {}, ""},
                 PatternDim{"Y", {"location", "station"}, {}, ""}};
    SOlapEngine cb(data.table.get(), data.hierarchies.get());
    SOlapEngine ii(data.table.get(), data.hierarchies.get());
    auto r1 = cb.Execute(spec, ExecStrategy::kCounterBased);
    auto r2 = ii.Execute(spec, ExecStrategy::kInvertedIndex);
    ASSERT_TRUE(r1.ok() && r2.ok());
    EXPECT_EQ((*r1)->num_cells(), (*r2)->num_cells());
    for (const auto& [key, cell] : (*r1)->cells()) {
      CellValue other = (*r2)->CellAt(key);
      EXPECT_EQ(other.count, cell.count);
      EXPECT_NEAR(other.sum, cell.sum, 1e-9);
    }
  }
}

// PREPEND grows the template leftward: the suffix-extension path of the
// index engine must agree with CB.
TEST(PrependProperty, SuffixGrowthAgreesWithCounterBased) {
  SyntheticParams p;
  p.num_sequences = 300;
  p.num_symbols = 15;
  p.mean_length = 8;
  SyntheticData data = GenerateSynthetic(p);
  CuboidSpec spec;
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""},
               PatternDim{"Y", {SyntheticData::kAttr, "symbol"}, {}, ""}};
  SOlapEngine engine(data.groups, data.hierarchies.get());
  auto first = engine.Execute(spec, ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(first.ok());
  // Slice, then PREPEND — the cached (X, Y) index is a usable suffix.
  auto sliced = ops::SliceToCell(spec, **first, (*first)->ArgMaxCell());
  ASSERT_TRUE(sliced.ok());
  auto prepended =
      ops::Prepend(*sliced, "W", {SyntheticData::kAttr, "symbol"});
  ASSERT_TRUE(prepended.ok());
  auto ii = engine.Execute(*prepended, ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(ii.ok()) << ii.status().ToString();
  SOlapEngine cb_engine(data.groups, data.hierarchies.get());
  auto cb = cb_engine.Execute(*prepended, ExecStrategy::kCounterBased);
  ASSERT_TRUE(cb.ok());
  ExpectCuboidsEqual(**cb, **ii, "prepend");
}

// A regex with plain concatenation must agree exactly with the equivalent
// substring template, cell by cell, on random data.
TEST(RegexProperty, ConcatenationMatchesSubstringTemplates) {
  SyntheticParams p;
  p.num_sequences = 300;
  p.num_symbols = 12;
  p.mean_length = 8;
  SyntheticData data = GenerateSynthetic(p);
  struct Case {
    const char* regex;
    std::vector<std::string> symbols;
  };
  for (const Case& c : {Case{"X Y", {"X", "Y"}}, Case{"X X", {"X", "X"}},
                        Case{"X Y X", {"X", "Y", "X"}}}) {
    CuboidSpec rspec;
    rspec.regex = c.regex;
    CuboidSpec tspec;
    tspec.symbols = c.symbols;
    std::vector<std::string> seen;
    for (const std::string& sym : c.symbols) {
      if (std::find(seen.begin(), seen.end(), sym) != seen.end()) continue;
      PatternDim d{sym, {SyntheticData::kAttr, "symbol"}, {}, ""};
      rspec.dims.push_back(d);
      tspec.dims.push_back(d);
      seen.push_back(sym);
    }
    SOlapEngine engine(data.groups, data.hierarchies.get());
    auto rr = engine.Execute(rspec);
    auto rt = engine.Execute(tspec, ExecStrategy::kCounterBased);
    ASSERT_TRUE(rr.ok() && rt.ok()) << c.regex;
    ExpectCuboidsEqual(**rt, **rr, c.regex);
  }
}

// Dice (multi-label restriction) behaves as the union of its slices.
TEST(DiceProperty, DiceEqualsUnionOfSlices) {
  SyntheticParams p;
  p.num_sequences = 300;
  p.num_symbols = 12;
  p.mean_length = 8;
  SyntheticData data = GenerateSynthetic(p);
  CuboidSpec spec;
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""},
               PatternDim{"Y", {SyntheticData::kAttr, "symbol"}, {}, ""}};
  SOlapEngine engine(data.groups, data.hierarchies.get());
  auto diced = ops::SlicePattern(spec, "X", {"e0", "e1"});
  ASSERT_TRUE(diced.ok());
  auto rd = engine.Execute(*diced, ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(rd.ok());
  auto s0 = engine.Execute(*ops::SlicePattern(spec, "X", {"e0"}));
  auto s1 = engine.Execute(*ops::SlicePattern(spec, "X", {"e1"}));
  ASSERT_TRUE(s0.ok() && s1.ok());
  EXPECT_EQ((*rd)->num_cells(), (*s0)->num_cells() + (*s1)->num_cells());
  for (const auto& [key, cell] : (*s0)->cells()) {
    EXPECT_EQ((*rd)->CellAt(key).count, cell.count);
  }
  for (const auto& [key, cell] : (*s1)->cells()) {
    EXPECT_EQ((*rd)->CellAt(key).count, cell.count);
  }
}

// The AUTO strategy must be invisible in results across a whole session.
TEST(AutoProperty, AutoSessionMatchesCounterBased) {
  SyntheticParams p;
  p.num_sequences = 300;
  p.num_symbols = 12;
  p.mean_length = 8;
  SyntheticData data = GenerateSynthetic(p);
  CuboidSpec spec;
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""},
               PatternDim{"Y", {SyntheticData::kAttr, "symbol"}, {}, ""}};
  SOlapEngine auto_engine(data.groups, data.hierarchies.get());
  SOlapEngine cb_engine(data.groups, data.hierarchies.get());

  CuboidSpec current = spec;
  for (int step = 0; step < 4; ++step) {
    auto ra = auto_engine.Execute(current, ExecStrategy::kAuto);
    auto rc = cb_engine.Execute(current, ExecStrategy::kCounterBased);
    ASSERT_TRUE(ra.ok() && rc.ok()) << "step " << step;
    ExpectCuboidsEqual(**rc, **ra, "auto session");
    switch (step) {
      case 0:
        current = *ops::PRollUp(current, "Y", *data.hierarchies);
        break;
      case 1:
        current = *ops::PDrillDown(current, "Y", *data.hierarchies);
        break;
      case 2: {
        auto sliced = ops::SliceToCell(current, **ra, (*ra)->ArgMaxCell());
        current = *ops::Append(*sliced, "Z",
                               {SyntheticData::kAttr, "symbol"});
        break;
      }
      default:
        break;
    }
  }
}

// Multi-threaded counter-based scans must produce the same cuboid as the
// sequential scan, for COUNT and for merged SUM/MIN/MAX state.
TEST(ParallelScanProperty, ThreadedCounterBasedEqualsSequential) {
  SyntheticParams p;
  p.num_sequences = 5000;  // enough to cross the per-thread minimum
  p.num_symbols = 15;
  p.mean_length = 8;
  SyntheticData data = GenerateSynthetic(p);
  CuboidSpec spec;
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""},
               PatternDim{"Y", {SyntheticData::kAttr, "symbol"}, {}, ""}};
  EngineOptions threaded;
  threaded.cb_threads = 4;
  SOlapEngine seq_engine(data.groups, data.hierarchies.get());
  SOlapEngine par_engine(data.groups, data.hierarchies.get(), threaded);
  auto a = seq_engine.Execute(spec, ExecStrategy::kCounterBased);
  auto b = par_engine.Execute(spec, ExecStrategy::kCounterBased);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectCuboidsEqual(**a, **b, "threaded CB");
  // Stats accumulate across threads: every sequence scanned exactly once.
  EXPECT_EQ(par_engine.stats().sequences_scanned, 5000u);

  // SUM over a table-backed workload, all restrictions.
  TransitParams tp;
  tp.num_passengers = 3000;
  tp.num_days = 1;
  TransitData transit = GenerateTransit(tp);
  CuboidSpec sum_spec;
  sum_spec.agg = AggKind::kSum;
  sum_spec.measure = "amount";
  sum_spec.seq.cluster_by = {{"card-id", "individual"}};
  sum_spec.seq.sequence_by = "time";
  sum_spec.symbols = {"X", "Y"};
  sum_spec.dims = {PatternDim{"X", {"location", "station"}, {}, ""},
                   PatternDim{"Y", {"location", "station"}, {}, ""}};
  SOlapEngine ts(transit.table.get(), transit.hierarchies.get());
  SOlapEngine tp4(transit.table.get(), transit.hierarchies.get(), threaded);
  auto sa = ts.Execute(sum_spec, ExecStrategy::kCounterBased);
  auto sb = tp4.Execute(sum_spec, ExecStrategy::kCounterBased);
  ASSERT_TRUE(sa.ok() && sb.ok());
  for (const auto& [key, cell] : (*sa)->cells()) {
    CellValue other = (*sb)->CellAt(key);
    EXPECT_EQ(other.count, cell.count);
    EXPECT_NEAR(other.sum, cell.sum, 1e-9);
    EXPECT_NEAR(other.min, cell.min, 1e-9);
    EXPECT_NEAR(other.max, cell.max, 1e-9);
  }
}

// The §6 bitmap join path must be a pure performance knob: identical
// cuboids with and without it, for restricted and unrestricted templates.
TEST(BitmapJoinProperty, BitmapAndListJoinsAgree) {
  SyntheticParams p;
  p.num_sequences = 400;
  p.num_symbols = 15;
  p.mean_length = 10;
  SyntheticData data = GenerateSynthetic(p);
  for (std::vector<std::string> symbols :
       {std::vector<std::string>{"X", "Y", "Z"},
        std::vector<std::string>{"X", "Y", "Y", "X"}}) {
    CuboidSpec spec;
    spec.symbols = symbols;
    std::vector<std::string> seen;
    for (const std::string& sym : symbols) {
      if (std::find(seen.begin(), seen.end(), sym) != seen.end()) continue;
      spec.dims.push_back(
          PatternDim{sym, {SyntheticData::kAttr, "symbol"}, {}, ""});
      seen.push_back(sym);
    }
    EngineOptions with_bitmaps;
    with_bitmaps.bitmap_join_threshold = 1;  // bitmap every intersection
    SOlapEngine plain(data.groups, data.hierarchies.get());
    SOlapEngine bitmapped(data.groups, data.hierarchies.get(), with_bitmaps);
    auto a = plain.Execute(spec, ExecStrategy::kInvertedIndex);
    auto b = bitmapped.Execute(spec, ExecStrategy::kInvertedIndex);
    ASSERT_TRUE(a.ok() && b.ok());
    ExpectCuboidsEqual(**a, **b, "bitmap join");
  }
}

// Subsequence matcher against a brute-force oracle on tiny alphabets.
TEST(MatcherOracleProperty, SubsequenceCountsMatchBruteForce) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 30; ++round) {
    auto set = std::make_shared<SequenceGroupSet>("symbol");
    Dictionary& dict = set->raw_dictionary();
    for (char c = 'a'; c <= 'c'; ++c) dict.GetOrAdd(std::string(1, c));
    SequenceGroup& g = set->GroupFor({});
    std::uniform_int_distribution<int> len(2, 8), sym(0, 2);
    std::vector<std::vector<Code>> seqs;
    for (int s = 0; s < 10; ++s) {
      std::vector<Code> seq(len(rng));
      for (Code& c : seq) c = static_cast<Code>(sym(rng));
      g.AddSequence(seq);
      seqs.push_back(seq);
    }

    CuboidSpec spec;
    spec.kind = PatternKind::kSubsequence;
    spec.symbols = {"X", "Y"};
    spec.dims = {PatternDim{"X", {"symbol", "symbol"}, {}, ""},
                 PatternDim{"Y", {"symbol", "symbol"}, {}, ""}};
    SOlapEngine engine(set, nullptr);
    auto r = engine.Execute(spec, ExecStrategy::kInvertedIndex);
    ASSERT_TRUE(r.ok());

    // Oracle: a sequence supports (x, y) iff some i < j has s[i]=x, s[j]=y.
    std::map<std::pair<Code, Code>, int64_t> oracle;
    for (const auto& seq : seqs) {
      std::set<std::pair<Code, Code>> found;
      for (size_t i = 0; i < seq.size(); ++i) {
        for (size_t j = i + 1; j < seq.size(); ++j) {
          found.insert({seq[i], seq[j]});
        }
      }
      for (const auto& pr : found) ++oracle[pr];
    }
    EXPECT_EQ((*r)->num_cells(), oracle.size());
    for (const auto& [pr, count] : oracle) {
      EXPECT_EQ((*r)->CellAt({pr.first, pr.second}).count, count);
    }
  }
}

}  // namespace
}  // namespace solap
