// Streaming ingestion (docs/INGESTION.md): IngestRows edge cases, epoch
// semantics, retention interaction, delta merges, cuboid patching, and the
// service/HTTP ingest surface. The recurring oracle: after any sequence of
// appends, a live engine's answer must be BIT-IDENTICAL to a fresh engine
// rebuilt over the same rows — compared through EncodeShardPartial, whose
// output is a pure function of cuboid content.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "paper_fixtures.h"
#include "solap/cube/partial_codec.h"
#include "solap/engine/engine.h"
#include "solap/engine/sharded_engine.h"
#include "solap/net/http_client.h"
#include "solap/net/query_routes.h"
#include "solap/net/server.h"
#include "solap/service/query_service.h"

namespace solap {
namespace {

using testing::Fig8Hierarchies;
using testing::Fig8Table;

// SUBSTRING(X) at station level, COUNT — patchable (no regex, no iceberg).
CuboidSpec SimpleSpec() {
  CuboidSpec s;
  s.seq.cluster_by = {{"card-id", "card-id"}};
  s.seq.sequence_by = "time";
  s.symbols = {"X"};
  s.dims = {PatternDim{"X", {"location", "station"}, {}, ""}};
  return s;
}

std::string Canonical(const SCuboid& c) {
  return EncodeShardPartial(c, ScanStats{});
}

// One event row in Fig8Table's schema.
std::vector<Value> Row(int64_t t, const std::string& card,
                       const std::string& station, const std::string& action,
                       double amount) {
  return {Value::Timestamp(t), Value::String(card), Value::String(station),
          Value::String(action), Value::Double(amount)};
}

// A fresh table holding the first `rows` rows of `src` (all of them when
// rows == npos): the rebuild side of the bit-identity oracle.
std::shared_ptr<EventTable> CopyPrefix(const EventTable& src, size_t rows) {
  auto out = std::make_shared<EventTable>(src.schema());
  const size_t n = std::min(rows, src.num_rows());
  const size_t cols = src.schema().num_fields();
  for (size_t r = 0; r < n; ++r) {
    std::vector<Value> row;
    row.reserve(cols);
    for (size_t c = 0; c < cols; ++c) {
      row.push_back(src.GetValue(static_cast<RowId>(r), static_cast<int>(c)));
    }
    EXPECT_TRUE(out->AppendRow(row).ok());
  }
  return out;
}

class IngestTest : public ::testing::Test {
 protected:
  IngestTest()
      : table_(Fig8Table()),
        reg_(Fig8Hierarchies()),
        engine_(table_.get(), reg_.get(), NoAutoMerge()) {}

  static EngineOptions NoAutoMerge() {
    EngineOptions o;
    o.auto_delta_merge = false;  // deterministic: merges happen when told
    return o;
  }

  std::string FreshAnswer(ExecStrategy strategy = ExecStrategy::kAuto) {
    auto fresh_table = CopyPrefix(*table_, table_->num_rows());
    SOlapEngine fresh(fresh_table.get(), reg_.get(), NoAutoMerge());
    auto r = fresh.Execute(SimpleSpec(), strategy);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return Canonical(**r);
  }

  std::shared_ptr<EventTable> table_;
  std::shared_ptr<HierarchyRegistry> reg_;
  SOlapEngine engine_;
};

TEST_F(IngestTest, AppendReflectsInQueriesAndAdvancesEpoch) {
  EXPECT_EQ(engine_.epoch(), 0u);
  auto before = engine_.Execute(SimpleSpec(), ExecStrategy::kAuto);
  ASSERT_TRUE(before.ok());

  const int64_t t = MakeTimestamp(2007, 12, 26, 9, 0, 0);
  ASSERT_TRUE(engine_
                  .IngestRows({Row(t, "9001", "Pentagon", "in", 0.0),
                               Row(t + 60, "9001", "Wheaton", "out", -2.0)})
                  .ok());
  EXPECT_EQ(engine_.epoch(), 2u);

  uint64_t seen_epoch = 0;
  ExecControl control;
  control.epoch_out = &seen_epoch;
  auto after = engine_.Execute(SimpleSpec(), ExecStrategy::kAuto, control);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(seen_epoch, 2u);
  EXPECT_NE(Canonical(**before), Canonical(**after));
  EXPECT_EQ(Canonical(**after), FreshAnswer());
}

TEST_F(IngestTest, NewDictionaryCodeInAppendedBatch) {
  // "Rosslyn" does not exist in any dictionary yet; the append must mint
  // the code and queries must label the new cell correctly.
  const int64_t t = MakeTimestamp(2007, 12, 26, 10, 0, 0);
  ASSERT_TRUE(
      engine_.IngestRows({Row(t, "9002", "Rosslyn", "in", 0.0)}).ok());
  auto r = engine_.Execute(SimpleSpec(), ExecStrategy::kAuto);
  ASSERT_TRUE(r.ok());
  bool found = false;
  for (const auto& [key, cell] : (*r)->cells()) {
    if ((*r)->LabelOf(0, key[0]) == "Rosslyn") {
      found = true;
      EXPECT_EQ(cell.count, 1);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(Canonical(**r), FreshAnswer());
}

TEST_F(IngestTest, ZeroEventAppendDoesNotAdvanceEpoch) {
  ASSERT_TRUE(engine_.IngestRows({}).ok());
  EXPECT_EQ(engine_.epoch(), 0u);
}

TEST_F(IngestTest, AppendIntoEvictedWindowStaysInvisible) {
  // Evict everything before Dec 26; the Fig. 8 rows (Dec 25) disappear.
  const int64_t cutoff = MakeTimestamp(2007, 12, 26, 0, 0, 0);
  ASSERT_TRUE(engine_.EvictBefore("time", cutoff).ok());
  EXPECT_EQ(engine_.epoch(), 2u);
  auto empty = engine_.Execute(SimpleSpec(), ExecStrategy::kAuto);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ((*empty)->num_cells(), 0u);

  // An append whose rows fall BELOW the retention cutoff lands in the
  // table (append-only storage) but stays invisible to formation — for an
  // evicted card and a new one alike.
  const int64_t old_t = MakeTimestamp(2007, 12, 25, 9, 0, 0);
  ASSERT_TRUE(engine_
                  .IngestRows({Row(old_t, "688", "Pentagon", "in", 0.0),
                               Row(old_t + 60, "9003", "Deanwood", "in", 0.0)})
                  .ok());
  EXPECT_EQ(engine_.epoch(), 4u);
  auto still_empty = engine_.Execute(SimpleSpec(), ExecStrategy::kAuto);
  ASSERT_TRUE(still_empty.ok());
  EXPECT_EQ((*still_empty)->num_cells(), 0u);

  // Rows at or past the cutoff become visible as usual.
  ASSERT_TRUE(
      engine_.IngestRows({Row(cutoff + 60, "9003", "Deanwood", "in", 0.0)})
          .ok());
  auto visible = engine_.Execute(SimpleSpec(), ExecStrategy::kAuto);
  ASSERT_TRUE(visible.ok());
  EXPECT_EQ((*visible)->num_cells(), 1u);
}

TEST_F(IngestTest, MonotoneRetentionIgnoresLowerCutoff) {
  const int64_t cutoff = MakeTimestamp(2007, 12, 26, 0, 0, 0);
  ASSERT_TRUE(engine_.EvictBefore("time", cutoff).ok());
  ASSERT_TRUE(engine_.EvictBefore("time", cutoff - 86400).ok());
  auto r = engine_.Execute(SimpleSpec(), ExecStrategy::kAuto);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_cells(), 0u);  // the higher cutoff still applies
}

TEST_F(IngestTest, EvictBeforeRejectsNonTimeColumn) {
  Status s = engine_.EvictBefore("location", 0);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine_.epoch(), 0u);
}

TEST_F(IngestTest, IngestRequiresMutableConstructor) {
  SOlapEngine readonly(static_cast<const EventTable*>(table_.get()),
                       reg_.get());
  Status s = readonly.IngestRows({Row(0, "1", "Pentagon", "in", 0.0)});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(IngestTest, InvalidRowRejectsWholeBatchAndEpochHolds) {
  // Second row has a type mismatch; validate-first Append must reject the
  // batch atomically and the epoch must not advance.
  std::vector<std::vector<Value>> batch = {
      Row(1, "9004", "Pentagon", "in", 0.0),
      {Value::Timestamp(2), Value::Int64(7), Value::String("Wheaton"),
       Value::String("out"), Value::Double(0.0)}};
  const std::string before = FreshAnswer();
  EXPECT_FALSE(engine_.IngestRows(batch).ok());
  EXPECT_EQ(engine_.epoch(), 0u);
  auto r = engine_.Execute(SimpleSpec(), ExecStrategy::kAuto);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Canonical(**r), before);
}

TEST_F(IngestTest, DeltaSegmentsMergeWithoutChangingAnswers) {
  // Warm a complete index, then extend it via appends: the new sids land
  // in a delta segment, and folding it must not change any answer.
  auto warm = engine_.Execute(SimpleSpec(), ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(warm.ok());
  const int64_t t = MakeTimestamp(2007, 12, 26, 11, 0, 0);
  ASSERT_TRUE(engine_
                  .IngestRows({Row(t, "9005", "Pentagon", "in", 0.0),
                               Row(t + 60, "9005", "Clarendon", "out", -2.0)})
                  .ok());
  EXPECT_GT(engine_.DeltaSnapshot().segments, 0u);

  auto live = engine_.Execute(SimpleSpec(), ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(Canonical(**live), FreshAnswer(ExecStrategy::kInvertedIndex));

  const uint64_t epoch_before = engine_.epoch();
  ASSERT_TRUE(engine_.MergeDeltasNow().ok());
  EXPECT_EQ(engine_.DeltaSnapshot().segments, 0u);
  EXPECT_EQ(engine_.epoch(), epoch_before);  // merge is not observable
  auto merged = engine_.Execute(SimpleSpec(), ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(Canonical(**merged), Canonical(**live));
}

TEST_F(IngestTest, CachedCuboidIsPatchedForNewClusterKeys) {
  auto warm = engine_.Execute(SimpleSpec(), ExecStrategy::kAuto);
  ASSERT_TRUE(warm.ok());
  const int64_t t = MakeTimestamp(2007, 12, 26, 12, 0, 0);
  ASSERT_TRUE(engine_
                  .IngestRows({Row(t, "9006", "Glenmont", "in", 0.0),
                               Row(t + 60, "9006", "Wheaton", "out", -2.0)})
                  .ok());
  // The batch introduced only a NEW cluster key, so the cached cuboid was
  // delta-patched rather than thrown away.
  EXPECT_GT(engine_.StatsSnapshot().cuboid_patches, 0u);
  auto patched = engine_.Execute(SimpleSpec(), ExecStrategy::kAuto);
  ASSERT_TRUE(patched.ok());
  EXPECT_EQ(Canonical(**patched), FreshAnswer());
}

TEST_F(IngestTest, ExistingClusterKeyInvalidatesAndRebuilds) {
  auto warm = engine_.Execute(SimpleSpec(), ExecStrategy::kAuto);
  ASSERT_TRUE(warm.ok());
  // Card 688 already has a sequence: conservative invalidation path.
  const int64_t t = MakeTimestamp(2007, 12, 26, 13, 0, 0);
  ASSERT_TRUE(
      engine_.IngestRows({Row(t, "688", "Deanwood", "in", 0.0)}).ok());
  EXPECT_GT(engine_.StatsSnapshot().formation_invalidations, 0u);
  auto rebuilt = engine_.Execute(SimpleSpec(), ExecStrategy::kAuto);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(Canonical(**rebuilt), FreshAnswer());
}

TEST_F(IngestTest, ShardedEngineRoutesAppendsToOwningShards) {
  for (size_t shards : {size_t{1}, size_t{2}, size_t{3}}) {
    auto table = Fig8Table();
    EngineOptions opts = NoAutoMerge();
    opts.shards = shards;
    opts.shard_by = "card-id";
    ShardedEngine engine(table.get(), reg_.get(), opts);
    auto warm = engine.Execute(SimpleSpec(), ExecStrategy::kAuto);
    ASSERT_TRUE(warm.ok());

    const int64_t t = MakeTimestamp(2007, 12, 26, 14, 0, 0);
    ASSERT_TRUE(engine
                    .IngestRows({Row(t, "9007", "Pentagon", "in", 0.0),
                                 Row(t + 60, "9007", "Rosslyn", "out", -2.0),
                                 Row(t + 90, "688", "Rosslyn", "in", 0.0)})
                    .ok());
    EXPECT_EQ(engine.epoch(), 2u);

    uint64_t seen_epoch = 0;
    ExecControl control;
    control.epoch_out = &seen_epoch;
    auto r = engine.Execute(SimpleSpec(), ExecStrategy::kAuto, control);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(seen_epoch, 2u);

    auto fresh_table = CopyPrefix(*table, table->num_rows());
    SOlapEngine fresh(fresh_table.get(), reg_.get(), NoAutoMerge());
    auto f = fresh.Execute(SimpleSpec(), ExecStrategy::kAuto);
    ASSERT_TRUE(f.ok());
    EXPECT_EQ(Canonical(**r), Canonical(**f)) << shards << " shards";
  }
}

TEST_F(IngestTest, ShardedEvictBeforeAppliesOnEveryShard) {
  auto table = Fig8Table();
  EngineOptions opts = NoAutoMerge();
  opts.shards = 2;
  opts.shard_by = "card-id";
  ShardedEngine engine(table.get(), reg_.get(), opts);
  const int64_t cutoff = MakeTimestamp(2007, 12, 26, 0, 0, 0);
  ASSERT_TRUE(engine.EvictBefore("time", cutoff).ok());
  auto r = engine.Execute(SimpleSpec(), ExecStrategy::kAuto);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_cells(), 0u);
}

TEST_F(IngestTest, ServiceIngestCountsEventsAndReportsEpoch) {
  QueryService service(&engine_);
  auto result = service.Ingest(
      {Row(MakeTimestamp(2007, 12, 26, 15, 0, 0), "9008", "Pentagon", "in",
           0.0)});
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.events, 1u);
  EXPECT_EQ(result.epoch, 2u);
  service.RefreshResourceMetrics();
  const std::string metrics = service.metrics().ToPrometheus();
  EXPECT_NE(metrics.find("solap_ingest_events 1"), std::string::npos);
  EXPECT_NE(metrics.find("solap_epoch 2"), std::string::npos);
}

TEST_F(IngestTest, HttpIngestReflectsInQueriesWithoutReload) {
  QueryService service(&engine_);
  net::HttpServer server(net::BuildSolapRouter(&service), {});
  ASSERT_TRUE(server.Start().ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);

  const std::string body =
      "{\"rows\":[[1198684800,\"9009\",\"Rosslyn\",\"in\",0.0],"
      "[1198684860,\"9009\",\"Pentagon\",\"out\",-2.0]]}";
  auto resp = net::HttpExchange("127.0.0.1", server.port(), "POST", "/ingest",
                                body, {{"Content-Type", "application/json"}},
                                deadline);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("\"epoch\":2"), std::string::npos);

  auto query = net::HttpExchange(
      "127.0.0.1", server.port(), "POST", "/query",
      "SELECT COUNT(*) FROM S CLUSTER BY card-id AT card-id "
      "SEQUENCE BY time CUBOID BY SUBSTRING (X) "
      "WITH X AS location AT station ALL-MATCHED",
      {}, deadline);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->status, 200) << query->body;
  EXPECT_NE(query->body.find("Rosslyn"), std::string::npos);

  // A malformed batch is rejected whole with 400.
  auto bad = net::HttpExchange("127.0.0.1", server.port(), "POST", "/ingest",
                               "{\"rows\":[[\"not\",\"enough\"]]}", {},
                               deadline);
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 400);
  server.Stop();
}

}  // namespace
}  // namespace solap
