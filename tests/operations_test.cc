// Unit tests for the six S-OLAP operations (paper §3.3) plus the classical
// global-dimension operations, as CuboidSpec transformations.
#include <gtest/gtest.h>

#include "paper_fixtures.h"
#include "solap/engine/engine.h"
#include "solap/engine/operations.h"

namespace solap {
namespace {

CuboidSpec BaseXY() {
  CuboidSpec s;
  s.seq.cluster_by = {{"card-id", "card-id"}};
  s.seq.sequence_by = "time";
  s.symbols = {"X", "Y"};
  s.dims = {PatternDim{"X", {"location", "station"}, {}, ""},
            PatternDim{"Y", {"location", "station"}, {}, ""}};
  return s;
}

TEST(OperationsTest, AppendExistingAndNewSymbols) {
  // The paper's Q1 -> Q2 flow: APPEND X then APPEND Z (Fig. 5).
  CuboidSpec q1 = BaseXY();
  q1.symbols = {"X", "Y", "Y", "X"};
  auto with_x = ops::Append(q1, "X");
  ASSERT_TRUE(with_x.ok());
  EXPECT_EQ(with_x->symbols,
            (std::vector<std::string>{"X", "Y", "Y", "X", "X"}));
  EXPECT_EQ(with_x->dims.size(), 2u);  // X already declared
  auto q2 = ops::Append(*with_x, "Z", {"location", "station"});
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->symbols.size(), 6u);
  EXPECT_EQ(q2->dims.size(), 3u);
  EXPECT_EQ(q2->dims[2].symbol, "Z");

  // A new symbol without a domain is an error.
  EXPECT_FALSE(ops::Append(q1, "W").ok());
}

TEST(OperationsTest, AppendExtendsPlaceholders) {
  CuboidSpec s = BaseXY();
  s.placeholders = {"x1", "y1"};
  s.predicate = Expr::Eq(Expr::PCol("x1", "action"),
                         Expr::Lit(Value::String("in")));
  auto r = ops::Append(s, "Z", {"location", "station"}, "z1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->placeholders, (std::vector<std::string>{"x1", "y1", "z1"}));
  // Auto-generated placeholder avoids collisions.
  auto r2 = ops::Append(s, "Z", {"location", "station"});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->placeholders.size(), 3u);
  EXPECT_NE(r2->placeholders[2], "x1");
  EXPECT_NE(r2->placeholders[2], "y1");
}

TEST(OperationsTest, PrependAddsAtFront) {
  CuboidSpec s = BaseXY();
  auto r = ops::Prepend(s, "Z", {"location", "district"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->symbols, (std::vector<std::string>{"Z", "X", "Y"}));
  EXPECT_EQ(r->dims.size(), 3u);
}

TEST(OperationsTest, DeTailDeHeadRoundTripRestoresSpec) {
  // Paper §4.2.2: APPEND then DE-TAIL returns to the original cuboid, so
  // the repository can serve the cached result — canonical keys must match.
  CuboidSpec qa = BaseXY();
  auto qb = ops::Append(qa, "Y");
  ASSERT_TRUE(qb.ok());
  auto qc = ops::DeTail(*qb);
  ASSERT_TRUE(qc.ok());
  EXPECT_EQ(qc->CanonicalString(), qa.CanonicalString());

  auto qd = ops::Prepend(qa, "Z", {"location", "station"});
  ASSERT_TRUE(qd.ok());
  auto qe = ops::DeHead(*qd);
  ASSERT_TRUE(qe.ok());
  EXPECT_EQ(qe->CanonicalString(), qa.CanonicalString());
}

TEST(OperationsTest, RemovingLastOccurrenceDropsDimension) {
  CuboidSpec s = BaseXY();
  auto r = ops::DeTail(s);  // removes Y entirely
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->symbols, (std::vector<std::string>{"X"}));
  EXPECT_EQ(r->dims.size(), 1u);
  // Cannot drop below one symbol.
  EXPECT_FALSE(ops::DeTail(*r).ok());
  EXPECT_FALSE(ops::DeHead(*r).ok());
}

TEST(OperationsTest, DeTailRefusesWhenPredicateReferencesPosition) {
  CuboidSpec s = BaseXY();
  s.placeholders = {"x1", "y1"};
  s.predicate = Expr::Eq(Expr::PCol("y1", "action"),
                         Expr::Lit(Value::String("out")));
  auto r = ops::DeTail(s);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("y1"), std::string::npos);
  // DE-HEAD is fine: x1 is removed but unreferenced.
  s.predicate = Expr::Eq(Expr::PCol("y1", "action"),
                         Expr::Lit(Value::String("out")));
  auto r2 = ops::DeHead(s);
  EXPECT_TRUE(r2.ok());
}

TEST(OperationsTest, PRollUpAndDrillDownWalkTheHierarchy) {
  auto reg = testing::Fig8Hierarchies();
  CuboidSpec s = BaseXY();
  auto up = ops::PRollUp(s, "Y", *reg);
  ASSERT_TRUE(up.ok()) << up.status().ToString();
  EXPECT_EQ(up->dims[1].ref.level, "district");
  EXPECT_EQ(up->dims[0].ref.level, "station");
  // No level above district.
  EXPECT_FALSE(ops::PRollUp(*up, "Y", *reg).ok());
  auto down = ops::PDrillDown(*up, "Y", *reg);
  ASSERT_TRUE(down.ok());
  EXPECT_EQ(down->dims[1].ref.level, "station");
  EXPECT_FALSE(ops::PDrillDown(*down, "Y", *reg).ok());
  EXPECT_FALSE(ops::PRollUp(s, "Q", *reg).ok());  // unknown symbol
}

TEST(OperationsTest, SliceLevelSticksThroughDrillDown) {
  auto reg = testing::Fig8Hierarchies();
  CuboidSpec s = BaseXY();
  auto up = ops::PRollUpTo(s, "X", "district");
  ASSERT_TRUE(up.ok());
  auto sliced = ops::SlicePattern(*up, "X", {"D10"});
  ASSERT_TRUE(sliced.ok());
  EXPECT_EQ(sliced->dims[0].fixed_labels,
            (std::vector<std::string>{"D10"}));
  EXPECT_TRUE(sliced->dims[0].fixed_level.empty());
  // Drill back down: the slice keeps its district level.
  auto down = ops::PDrillDown(*sliced, "X", *reg);
  ASSERT_TRUE(down.ok());
  EXPECT_EQ(down->dims[0].ref.level, "station");
  EXPECT_EQ(down->dims[0].fixed_level, "district");
  EXPECT_EQ(down->dims[0].fixed_labels,
            (std::vector<std::string>{"D10"}));
}

TEST(OperationsTest, CalendarLevelsRollUpWithoutHierarchy) {
  HierarchyRegistry empty;
  CuboidSpec s = BaseXY();
  s.dims[0].ref = {"time", "day"};
  auto up = ops::PRollUp(s, "X", empty);
  ASSERT_TRUE(up.ok()) << up.status().ToString();
  EXPECT_EQ(up->dims[0].ref.level, "week");
  auto down = ops::PDrillDown(*up, "X", empty);
  ASSERT_TRUE(down.ok());
  EXPECT_EQ(down->dims[0].ref.level, "day");
}

TEST(OperationsTest, GlobalLevelChanges) {
  CuboidSpec s = BaseXY();
  s.seq.group_by = {{"card-id", "fare-group"}};
  auto down = ops::DrillDownGlobal(s, "card-id", "card-id");
  ASSERT_TRUE(down.ok());
  EXPECT_EQ(down->seq.group_by[0].level, "card-id");
  auto up = ops::RollUpGlobal(*down, "card-id", "fare-group");
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(up->seq.group_by[0].level, "fare-group");
  EXPECT_FALSE(ops::RollUpGlobal(s, "location", "district").ok());
}

TEST(OperationsTest, SliceToCellFixesEveryPatternDimension) {
  // Execute a tiny query, then slice to its argmax cell.
  auto table = testing::Fig8Table();
  auto reg = testing::Fig8Hierarchies();
  SOlapEngine engine(table.get(), reg.get());
  CuboidSpec s = BaseXY();
  auto r = engine.Execute(s);
  ASSERT_TRUE(r.ok());
  CellKey top = (*r)->ArgMaxCell();
  ASSERT_FALSE(top.empty());
  auto sliced = ops::SliceToCell(s, **r, top);
  ASSERT_TRUE(sliced.ok());
  EXPECT_EQ(sliced->dims[0].fixed_labels.size(), 1u);
  EXPECT_EQ(sliced->dims[1].fixed_labels.size(), 1u);
  // Executing the sliced spec yields exactly that one cell.
  auto rs = engine.Execute(*sliced);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ((*rs)->num_cells(), 1u);
  EXPECT_EQ((*rs)->CellAt(top).count, (*r)->CellAt(top).count);
  // Arity mismatch is rejected.
  EXPECT_FALSE(ops::SliceToCell(s, **r, {0}).ok());
}

}  // namespace
}  // namespace solap
