// Integration tests: full exploratory sessions over generated workloads,
// mirroring the paper's two narratives — the WMATA transit analysis (§1,
// §3) and the Gazelle clickstream analysis (§5.1) — through the query
// language, the engine and the S-OLAP operations.
#include <gtest/gtest.h>

#include "solap/engine/engine.h"
#include "solap/engine/operations.h"
#include "solap/gen/clickstream.h"
#include "solap/gen/transit.h"
#include "solap/parser/parser.h"

namespace solap {
namespace {

double CellByLabels(const SCuboid& c, const std::vector<std::string>& labels) {
  for (const auto& [key, cell] : c.cells()) {
    bool match = key.size() == labels.size();
    for (size_t d = 0; match && d < key.size(); ++d) {
      match = c.LabelOf(d, key[d]) == labels[d];
    }
    if (match) return cell.Value(c.agg());
  }
  return -1.0;
}

class TransitSession : public ::testing::Test {
 protected:
  TransitSession() {
    TransitParams p;
    p.num_passengers = 400;
    p.num_days = 3;
    data_ = GenerateTransit(p);
    engine_ = std::make_unique<SOlapEngine>(data_.table.get(),
                                            data_.hierarchies.get());
  }
  TransitData data_;
  std::unique_ptr<SOlapEngine> engine_;
};

// The paper's Q1 through the parser: round-trip distribution per day and
// fare group.
TEST_F(TransitSession, Q1RoundTripsThroughTheQueryLanguage) {
  auto spec = ParseQuery(R"(
    SELECT COUNT(*) FROM Event
    CLUSTER BY card-id AT individual, time AT day
    SEQUENCE BY time ASCENDING
    SEQUENCE GROUP BY card-id AT fare-group, time AT day
    CUBOID BY SUBSTRING (X, Y, Y, X)
      WITH X AS location AT station, Y AS location AT station
      LEFT-MAXIMALITY (x1, y1, y2, x2)
      WITH x1.action = "in" AND y1.action = "out" AND
           y2.action = "in" AND x2.action = "out"
  )");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto cb = engine_->Execute(*spec, ExecStrategy::kCounterBased);
  ASSERT_TRUE(cb.ok()) << cb.status().ToString();
  SOlapEngine engine2(data_.table.get(), data_.hierarchies.get());
  auto ii = engine2.Execute(*spec, ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(ii.ok()) << ii.status().ToString();

  // 4D cuboid: (fare-group, day, X, Y); strategies agree cell by cell.
  ASSERT_EQ((*cb)->dims().size(), 4u);
  EXPECT_GT((*cb)->num_cells(), 0u);
  EXPECT_EQ((*cb)->num_cells(), (*ii)->num_cells());
  for (const auto& [key, cell] : (*cb)->cells()) {
    EXPECT_EQ((*ii)->CellAt(key).count, cell.count);
  }
}

// The Q1 -> Q2 exploration: slice the hottest round trip, APPEND X and Z,
// and look at the follow-up trip distribution.
TEST_F(TransitSession, SliceAndAppendFollowUpTrips) {
  auto spec = ParseQuery(R"(
    SELECT COUNT(*) FROM Event
    CLUSTER BY card-id AT individual, time AT day
    SEQUENCE BY time ASCENDING
    CUBOID BY SUBSTRING (X, Y, Y, X)
      WITH X AS location AT station, Y AS location AT station
      LEFT-MAXIMALITY
  )");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto q1 = engine_->Execute(*spec);
  ASSERT_TRUE(q1.ok());
  CellKey top = (*q1)->ArgMaxCell();
  ASSERT_FALSE(top.empty());

  auto sliced = ops::SliceToCell(*spec, **q1, top);
  ASSERT_TRUE(sliced.ok());
  auto with_x = ops::Append(*sliced, "X");
  ASSERT_TRUE(with_x.ok());
  auto q2 = ops::Append(*with_x, "Z", {"location", "station"});
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->symbols,
            (std::vector<std::string>{"X", "Y", "Y", "X", "X", "Z"}));

  auto r = engine_->Execute(*q2);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Every remaining cell keeps the sliced X and Y values.
  for (const auto& [key, cell] : (*r)->cells()) {
    EXPECT_EQ((*r)->LabelOf(0, key[0]), (*q1)->LabelOf(0, top[0]));
    EXPECT_EQ((*r)->LabelOf(1, key[1]), (*q1)->LabelOf(1, top[1]));
  }
  // Follow-up trips exist in the generator (third_trip_prob > 0) and every
  // such trip also contains the sliced round trip, so counts cannot exceed
  // the sliced cell's count.
  EXPECT_GT((*r)->num_cells(), 0u);
  double total = 0;
  for (const auto& [key, cell] : (*r)->cells()) total += cell.count;
  EXPECT_LE(total, (*q1)->CellAt(top).count);
}

// P-ROLL-UP of the destination to districts after a single-trip query.
TEST_F(TransitSession, RollUpDestinationToDistrict) {
  auto spec = ParseQuery(R"(
    SELECT COUNT(*) FROM Event
    CLUSTER BY card-id AT individual, time AT day
    SEQUENCE BY time ASCENDING
    CUBOID BY SUBSTRING (X, Y)
      WITH X AS location AT station, Y AS location AT station
      LEFT-MAXIMALITY (x1, y1)
      WITH x1.action = "in" AND y1.action = "out"
  )");
  ASSERT_TRUE(spec.ok());
  auto fine = engine_->Execute(*spec);
  ASSERT_TRUE(fine.ok());
  auto up = ops::PRollUp(*spec, "Y", *data_.hierarchies);
  ASSERT_TRUE(up.ok());
  auto coarse = engine_->Execute(*up);
  ASSERT_TRUE(coarse.ok()) << coarse.status().ToString();
  // Districts aggregate their stations: total count mass is preserved for
  // the left-maximality COUNT? No — a sequence matching two stations of the
  // same district collapses to one assignment, so coarse <= fine mass, and
  // coarse has fewer cells.
  EXPECT_LT((*coarse)->num_cells(), (*fine)->num_cells());
  double fine_mass = 0, coarse_mass = 0;
  for (const auto& [k, c] : (*fine)->cells()) fine_mass += c.count;
  for (const auto& [k, c] : (*coarse)->cells()) coarse_mass += c.count;
  EXPECT_LE(coarse_mass, fine_mass);
  EXPECT_GT(coarse_mass, 0);
}

// The §5.1 session: Qa (category pairs) -> slice + P-DRILL-DOWN -> Qb
// (product pages) -> APPEND -> Qc (comparison shopping).
TEST(ClickstreamSession, QaQbQcExploration) {
  ClickstreamParams p;
  p.num_sessions = 5000;
  ClickstreamData data = GenerateClickstream(p);
  SOlapEngine engine(data.table.get(), data.hierarchies.get());

  auto qa = ParseQuery(R"(
    SELECT COUNT(*) FROM Event
    CLUSTER BY session-id AT session-id
    SEQUENCE BY request-time ASCENDING
    CUBOID BY SUBSTRING (X, Y)
      WITH X AS page AT page-category, Y AS page AT page-category
      LEFT-MAXIMALITY (x1, y1)
  )");
  ASSERT_TRUE(qa.ok()) << qa.status().ToString();
  auto ra = engine.Execute(*qa);
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  double hot = CellByLabels(**ra, {"Assortment", "Legwear"});
  EXPECT_GT(hot, 0);

  // Slice (Assortment -> Legwear) and P-DRILL-DOWN Y to raw pages.
  auto sliced = ops::SlicePattern(*qa, "X", {"Assortment"});
  ASSERT_TRUE(sliced.ok());
  auto sliced2 = ops::SlicePattern(*sliced, "Y", {"Legwear"});
  ASSERT_TRUE(sliced2.ok());
  auto qb = ops::PDrillDown(*sliced2, "Y", *data.hierarchies);
  ASSERT_TRUE(qb.ok());
  auto rb = engine.Execute(*qb);
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  // Every Y cell is a Legwear product page; total equals the sliced count.
  double qb_mass = 0;
  for (const auto& [key, cell] : (*rb)->cells()) {
    EXPECT_NE((*rb)->LabelOf(1, key[1]).find("product-id-"),
              std::string::npos);
    qb_mass += cell.count;
  }
  // The drill-down re-distributes the (Assortment, Legwear) sequences over
  // product pages; a sequence may hit several product pages, so the mass
  // can exceed the category-level count, but it must cover it.
  EXPECT_GE(qb_mass, hot);

  // APPEND a comparison page and confirm both strategies agree.
  auto qc = ops::Append(*qb, "Z", {"page", "raw-page"}, "z1");
  ASSERT_TRUE(qc.ok());
  auto rc = engine.Execute(*qc, ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(rc.ok()) << rc.status().ToString();
  SOlapEngine cb_engine(data.table.get(), data.hierarchies.get());
  auto rc_cb = cb_engine.Execute(*qc, ExecStrategy::kCounterBased);
  ASSERT_TRUE(rc_cb.ok());
  EXPECT_EQ((*rc)->num_cells(), (*rc_cb)->num_cells());
  for (const auto& [key, cell] : (*rc_cb)->cells()) {
    EXPECT_EQ((*rc)->CellAt(key).count, cell.count);
  }
}

}  // namespace
}  // namespace solap
