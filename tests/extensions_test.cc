// Tests for the §6 extensions working together: iceberg S-cuboids through
// the query language, online aggregation as progressive estimation, and
// incremental update under day-batch arrival.
#include <gtest/gtest.h>

#include "solap/engine/engine.h"
#include "solap/gen/synthetic.h"
#include "solap/parser/parser.h"

namespace solap {
namespace {

SyntheticData SmallData() {
  SyntheticParams p;
  p.num_sequences = 500;
  p.num_symbols = 15;
  p.mean_length = 8;
  return GenerateSynthetic(p);
}

CuboidSpec XYSpec() {
  CuboidSpec spec;
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""},
               PatternDim{"Y", {SyntheticData::kAttr, "symbol"}, {}, ""}};
  return spec;
}

TEST(IcebergTest, ThresholdMonotonicity) {
  SyntheticData data = SmallData();
  SOlapEngine engine(data.groups, data.hierarchies.get());
  CuboidSpec spec = XYSpec();
  auto full = engine.Execute(spec);
  ASSERT_TRUE(full.ok());
  size_t prev = (*full)->num_cells();
  for (int64_t threshold : {2, 5, 20, 100}) {
    spec.iceberg_min_count = threshold;
    auto r = engine.Execute(spec);
    ASSERT_TRUE(r.ok());
    EXPECT_LE((*r)->num_cells(), prev);
    for (const auto& [key, cell] : (*r)->cells()) {
      EXPECT_GE(cell.count, threshold);
      // Surviving cells keep their exact counts.
      EXPECT_EQ(cell.count, (*full)->CellAt(key).count);
    }
    prev = (*r)->num_cells();
  }
}

TEST(IcebergTest, ParsedIcebergKeywordFiltersCells) {
  // The ICEBERG extension is reachable from the query language.
  auto spec = ParseQuery(
      "SELECT COUNT(*) FROM E CLUSTER BY a AT a SEQUENCE BY t "
      "CUBOID BY SUBSTRING (X, Y) WITH X AS symbol AT symbol, "
      "Y AS symbol AT symbol LEFT-MAXIMALITY ICEBERG 10");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  SyntheticData data = SmallData();
  SOlapEngine engine(data.groups, data.hierarchies.get());
  auto r = engine.Execute(*spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (const auto& [key, cell] : (*r)->cells()) {
    EXPECT_GE(cell.count, 10);
  }
}

TEST(OnlineAggregationTest, PartialCountsScaleTowardExact) {
  SyntheticData data = SmallData();
  SOlapEngine engine(data.groups, data.hierarchies.get());
  CuboidSpec spec = XYSpec();
  SOlapEngine offline(data.groups, data.hierarchies.get());
  auto exact = offline.Execute(spec);
  ASSERT_TRUE(exact.ok());
  CellKey hot = (*exact)->ArgMaxCell();
  double exact_count = (*exact)->CellAt(hot).count;

  // At the halfway callback, count/fraction is a usable estimator of the
  // final count (the paper's "approximate numbers like 200,000 would be
  // informative enough" motivation).
  double estimate = 0;
  auto r = engine.ExecuteOnline(
      spec, 50, [&](const SCuboid& partial, double fraction) {
        if (fraction >= 0.5 && estimate == 0) {
          estimate = partial.CellAt(hot).count / fraction;
          return false;  // stop early with the estimate
        }
        return true;
      });
  ASSERT_TRUE(r.ok());
  EXPECT_GT(estimate, 0);
  EXPECT_NEAR(estimate, exact_count, exact_count * 0.35);
}

TEST(IncrementalTest, DayBatchesKeepIndexBytesGrowing) {
  SyntheticParams p;
  p.num_sequences = 300;
  p.num_symbols = 15;
  p.mean_length = 8;
  SyntheticData data = GenerateSynthetic(p);
  SOlapEngine engine(data.groups, data.hierarchies.get());
  CuboidSpec spec = XYSpec();
  ASSERT_TRUE(engine.Execute(spec, ExecStrategy::kInvertedIndex).ok());
  size_t bytes_before = engine.IndexCacheBytes();
  ASSERT_GT(bytes_before, 0u);
  uint64_t scans_before = engine.stats().sequences_scanned;

  auto delta = GenerateSyntheticBatch(p, 100, 555);
  ASSERT_TRUE(engine.AppendRawSequences(0, delta).ok());
  // Only the delta was scanned to maintain the index.
  EXPECT_EQ(engine.stats().sequences_scanned, scans_before + 100);
  EXPECT_GE(engine.IndexCacheBytes(), bytes_before);

  // Repository was invalidated: the next query recomputes (from the
  // maintained index) rather than serving the stale cuboid.
  uint64_t repo_hits = engine.stats().repository_hits;
  auto r = engine.Execute(spec, ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(engine.stats().repository_hits, repo_hits);
}

TEST(IncrementalTest, AppendValidation) {
  SyntheticData data = SmallData();
  SOlapEngine engine(data.groups, data.hierarchies.get());
  EXPECT_FALSE(engine.AppendRawSequences(99, {}).ok());

  // Table-backed engines direct callers to NotifyTableAppend.
  Schema schema({{"t", ValueType::kInt64, FieldRole::kDimension}});
  EventTable table(schema);
  SOlapEngine table_engine(&table, nullptr);
  EXPECT_FALSE(table_engine.AppendRawSequences(0, {}).ok());
}

TEST(OnlineAggregationTest, RejectsZeroChunk) {
  SyntheticData data = SmallData();
  SOlapEngine engine(data.groups, data.hierarchies.get());
  auto r = engine.ExecuteOnline(XYSpec(), 0,
                                [](const SCuboid&, double) { return true; });
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace solap
