// Equivalence tests for the chunked container posting lists
// (index/container.h): the container kernels must produce exactly the sid
// sets of the scalar flat-vector reference over adversarial distributions
// (dense runs, singletons, chunk-boundary straddles), and container lists
// must survive a CRC'd snapshot round trip bit-identically.
#include "solap/index/container.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <random>
#include <vector>

#include "solap/index/intersect.h"
#include "solap/index/inverted_index.h"
#include "solap/storage/io.h"

namespace solap {
namespace {

std::vector<Sid> Sorted(std::vector<Sid> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

// Adversarial sid-set generators, all sorted + deduplicated.
std::vector<Sid> DenseRun(Sid start, size_t len) {
  std::vector<Sid> v(len);
  for (size_t i = 0; i < len; ++i) v[i] = start + static_cast<Sid>(i);
  return v;
}

std::vector<Sid> Singletons(std::mt19937& rng, size_t n, Sid max) {
  std::vector<Sid> v;
  std::uniform_int_distribution<Sid> d(0, max);
  for (size_t i = 0; i < n; ++i) v.push_back(d(rng));
  return Sorted(std::move(v));
}

// Values hugging both sides of the 2^16 container boundaries.
std::vector<Sid> ChunkStraddle(size_t chunks) {
  std::vector<Sid> v;
  for (size_t c = 1; c <= chunks; ++c) {
    const Sid edge = static_cast<Sid>(c * kContainerSpan);
    v.push_back(edge - 2);
    v.push_back(edge - 1);
    v.push_back(edge);
    v.push_back(edge + 1);
  }
  return v;
}

std::vector<Sid> RefIntersect(const std::vector<Sid>& a,
                              const std::vector<Sid>& b) {
  std::vector<Sid> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<Sid> RefUnion(const std::vector<std::vector<Sid>>& ins) {
  std::vector<Sid> out;
  for (const auto& v : ins) out.insert(out.end(), v.begin(), v.end());
  return Sorted(std::move(out));
}

// Checks every container code path on (a, b): round trip, equality,
// Contains, both intersection kernels against the flat reference.
void CheckPair(const std::vector<Sid>& a, const std::vector<Sid>& b) {
  const SidList la = SidList::FromSorted(a);
  const SidList lb = SidList::FromSorted(b);
  EXPECT_EQ(la.size(), a.size());
  EXPECT_TRUE(la == a);
  EXPECT_EQ(la.ToVector(), a);

  const std::vector<Sid> expect = RefIntersect(a, b);
  std::vector<Sid> got;
  IntersectSidLists(la, lb, got);
  EXPECT_EQ(got, expect) << "container kernels";
  IntersectSidLists(lb, la, got);
  EXPECT_EQ(got, expect) << "container kernels swapped";
  IntersectSidListsScalar(la, lb, got);
  EXPECT_EQ(got, expect) << "scalar cursor merge";

  const SidList lu = UnionManySidLists(
      std::vector<const SidList*>{&la, &lb});
  EXPECT_TRUE(lu == RefUnion({a, b})) << "union";
}

TEST(SidListTest, AppendDedupesConsecutiveAndKeepsOrder) {
  SidList l;
  for (Sid s : {0u, 0u, 1u, 1u, 1u, 70000u, 70000u}) l.Append(s);
  EXPECT_EQ(l.size(), 3u);
  EXPECT_EQ(l.ToVector(), (std::vector<Sid>{0, 1, 70000}));
  EXPECT_EQ(l.containers().size(), 2u);  // chunk 0 and chunk 1
  EXPECT_TRUE(l.Contains(70000));
  EXPECT_FALSE(l.Contains(2));
}

TEST(SidListTest, NormalizePicksTheSmallestRepresentation) {
  // A full contiguous run: 2 pairs worth of run beats array and bitmap.
  SidList run = SidList::FromSorted(DenseRun(10, 30000));
  ASSERT_EQ(run.containers().size(), 1u);
  EXPECT_EQ(run.containers()[0].kind, SidContainer::Kind::kRun);

  // Sparse values stay an array.
  const std::vector<Sid> sparse = {1, 100, 5000, 60000};
  SidList arr = SidList::FromSorted(sparse);
  ASSERT_EQ(arr.containers().size(), 1u);
  EXPECT_EQ(arr.containers()[0].kind, SidContainer::Kind::kArray);

  // >4096 scattered values with no run structure become a bitmap.
  std::mt19937 rng(7);
  std::vector<Sid> dense = Singletons(rng, 20000, kContainerSpan - 1);
  ASSERT_GT(dense.size(), size_t{kArrayBitmapCrossover});
  SidList bm = SidList::FromSorted(dense);
  ASSERT_EQ(bm.containers().size(), 1u);
  EXPECT_EQ(bm.containers()[0].kind, SidContainer::Kind::kBitmap);
  EXPECT_TRUE(bm == dense);
}

TEST(ContainerKernels, AdversarialDistributions) {
  std::mt19937 rng(20080612);
  const std::vector<std::vector<Sid>> sets = {
      {},                                     // empty
      {42},                                   // single element
      DenseRun(0, 5000),                      // bitmap/run chunk from 0
      DenseRun(kContainerSpan - 100, 200),    // run straddling a boundary
      ChunkStraddle(4),                       // edges of 4 boundaries
      Singletons(rng, 300, 5 * kContainerSpan),   // sparse arrays
      Singletons(rng, 30000, 2 * kContainerSpan), // dense bitmaps
      RefUnion({DenseRun(1000, 3000), Singletons(rng, 50, kContainerSpan)}),
  };
  for (size_t i = 0; i < sets.size(); ++i) {
    for (size_t j = 0; j < sets.size(); ++j) {
      SCOPED_TRACE(testing::Message() << "sets " << i << " x " << j);
      CheckPair(sets[i], sets[j]);
    }
  }
}

TEST(ContainerKernels, RandomizedFuzzAgainstFlatReference) {
  std::mt19937 rng(4096);
  for (int trial = 0; trial < 60; ++trial) {
    // Mix regimes so array, bitmap and run containers all appear and meet
    // each other across trials.
    auto make = [&] {
      std::vector<Sid> v;
      const int blocks = 1 + static_cast<int>(rng() % 4);
      for (int b = 0; b < blocks; ++b) {
        const Sid base = rng() % (3 * kContainerSpan);
        switch (rng() % 3) {
          case 0: {  // run
            const Sid len = 400 + rng() % 4000;
            for (Sid s = 0; s < len; ++s) v.push_back(base + s);
            break;
          }
          case 1: {  // dense scatter
            const size_t n = 2000 + rng() % 8000;
            for (size_t i = 0; i < n; ++i) {
              v.push_back(base + rng() % kContainerSpan);
            }
            break;
          }
          default: {  // sparse scatter
            const size_t n = rng() % 200;
            for (size_t i = 0; i < n; ++i) {
              v.push_back(base + rng() % kContainerSpan);
            }
            break;
          }
        }
      }
      return Sorted(std::move(v));
    };
    CheckPair(make(), make());
  }
}

TEST(ContainerKernels, UnionManyMatchesReference) {
  std::mt19937 rng(99);
  std::vector<std::vector<Sid>> flats;
  std::vector<SidList> lists;
  for (int i = 0; i < 7; ++i) {
    std::vector<Sid> v = (i % 2 == 0)
                             ? Singletons(rng, 500 * (i + 1), 2 * kContainerSpan)
                             : DenseRun(i * 10000, 6000);
    lists.push_back(SidList::FromSorted(v));
    flats.push_back(std::move(v));
  }
  std::vector<const SidList*> ptrs;
  for (const SidList& l : lists) ptrs.push_back(&l);
  ContainerOpCounts counts;
  const SidList got = UnionManySidLists(ptrs, &counts);
  EXPECT_TRUE(got == RefUnion(flats));
  EXPECT_GT(counts.array_ops + counts.bitmap_ops + counts.run_ops, 0u);
}

TEST(ContainerSnapshot, IndexRoundTripsThroughCrcWriter) {
  // Build an index whose lists exercise all three container kinds, save it
  // through the CRC'd snapshot writer, and require bit-identical lists.
  IndexShape shape;
  shape.kind = PatternKind::kSubstring;
  shape.positions = {{"attr", "symbol"}};
  InvertedIndex index(shape, /*complete=*/true);
  std::mt19937 rng(5);
  index.lists().emplace(PatternKey{0}, SidList::FromSorted(DenseRun(5, 9000)));
  index.lists().emplace(PatternKey{1},
                        SidList::FromSorted(Singletons(rng, 40, 200000)));
  index.lists().emplace(
      PatternKey{2},
      SidList::FromSorted(Singletons(rng, 30000, 2 * kContainerSpan)));
  index.lists().emplace(PatternKey{3},
                        SidList::FromSorted(ChunkStraddle(3)));
  index.NormalizeLists();

  const std::string path = testing::TempDir() + "/container_index.snap";
  ASSERT_TRUE(SaveIndex(index, path).ok());
  auto loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->num_lists(), index.num_lists());
  for (const auto& [key, list] : index.lists()) {
    const SidList* got = (*loaded)->Find(key);
    ASSERT_NE(got, nullptr);
    EXPECT_TRUE(*got == list);
    // Same containers, not just the same sids: kinds and payloads match.
    ASSERT_EQ(got->containers().size(), list.containers().size());
    for (size_t i = 0; i < list.containers().size(); ++i) {
      EXPECT_EQ(got->containers()[i].kind, list.containers()[i].kind);
      EXPECT_EQ(got->containers()[i].values, list.containers()[i].values);
      EXPECT_EQ(got->containers()[i].words, list.containers()[i].words);
    }
  }
  std::remove(path.c_str());
}

TEST(ContainerSnapshot, RejectsMalformedContainers) {
  IndexShape shape;
  shape.kind = PatternKind::kSubstring;
  shape.positions = {{"attr", "symbol"}};
  InvertedIndex index(shape, true);
  index.lists().emplace(PatternKey{0}, SidList::FromSorted(DenseRun(0, 10)));
  const std::string path = testing::TempDir() + "/container_bad.snap";
  ASSERT_TRUE(SaveIndex(index, path).ok());

  // Flip a byte in the middle; either the CRC or the container validation
  // must reject the load — never a crash or a silently wrong index.
  FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, -12, SEEK_END);
  std::fputc(0xFF, f);
  std::fclose(f);
  auto loaded = LoadIndex(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace solap
