// Unit tests for the storage module: Value, Schema, Dictionary, EventTable.
#include <gtest/gtest.h>

#include "solap/storage/event_table.h"

namespace solap {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int64(42).int64(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).dbl(), 2.5);
  EXPECT_EQ(Value::String("abc").str(), "abc");
  EXPECT_EQ(Value::Timestamp(1000).type(), ValueType::kTimestamp);
  EXPECT_EQ(Value::Bool(true).int64(), 1);
}

TEST(ValueTest, NumericCoercion) {
  EXPECT_DOUBLE_EQ(Value::Int64(3).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Timestamp(60).AsDouble(), 60.0);
  EXPECT_FALSE(Value::Null().AsBool());
  EXPECT_TRUE(Value::Int64(1).AsBool());
  EXPECT_FALSE(Value::Int64(0).AsBool());
  EXPECT_TRUE(Value::String("x").AsBool());
  EXPECT_FALSE(Value::String("").AsBool());
}

TEST(ValueTest, CrossTypeComparison) {
  EXPECT_TRUE(Value::Int64(3).Equals(Value::Double(3.0)));
  EXPECT_TRUE(Value::Int64(2).LessThan(Value::Timestamp(5)));
  EXPECT_TRUE(Value::String("a").LessThan(Value::String("b")));
  // String vs number never compares equal or ordered.
  EXPECT_FALSE(Value::String("3").Equals(Value::Int64(3)));
  EXPECT_FALSE(Value::String("3").LessThan(Value::Int64(4)));
  // NULL compares with nothing.
  EXPECT_FALSE(Value::Null().Equals(Value::Null()));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int64(-5).ToString(), "-5");
  EXPECT_EQ(Value::String("hi").ToString(), "hi");
}

TEST(SchemaTest, LookupByName) {
  Schema s({{"a", ValueType::kInt64, FieldRole::kDimension},
            {"b", ValueType::kString, FieldRole::kMeasure}});
  EXPECT_EQ(s.num_fields(), 2u);
  EXPECT_EQ(s.FieldIndex("b"), 1);
  EXPECT_EQ(s.FieldIndex("zzz"), -1);
  ASSERT_TRUE(s.RequireField("a").ok());
  Result<int> missing = s.RequireField("zzz");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("zzz"), std::string::npos);
}

TEST(DictionaryTest, AssignsDenseCodesInFirstSeenOrder) {
  Dictionary d;
  EXPECT_EQ(d.GetOrAdd("x"), 0u);
  EXPECT_EQ(d.GetOrAdd("y"), 1u);
  EXPECT_EQ(d.GetOrAdd("x"), 0u);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.ValueOf(1), "y");
  EXPECT_EQ(d.Lookup("y"), 1u);
  EXPECT_EQ(d.Lookup("absent"), kNullCode);
}

class EventTableTest : public ::testing::Test {
 protected:
  EventTableTest()
      : table_(Schema({{"t", ValueType::kTimestamp, FieldRole::kDimension},
                       {"loc", ValueType::kString, FieldRole::kDimension},
                       {"amt", ValueType::kDouble, FieldRole::kMeasure}})) {}
  EventTable table_;
};

TEST_F(EventTableTest, AppendAndRead) {
  ASSERT_TRUE(table_
                  .AppendRow({Value::Timestamp(100), Value::String("A"),
                              Value::Double(1.5)})
                  .ok());
  ASSERT_TRUE(table_
                  .AppendRow({Value::Timestamp(200), Value::String("B"),
                              Value::Int64(2)})  // int widens to double
                  .ok());
  EXPECT_EQ(table_.num_rows(), 2u);
  EXPECT_EQ(table_.Int64At(0, 0), 100);
  EXPECT_EQ(table_.CodeAt(1, 1), 1u);
  EXPECT_DOUBLE_EQ(table_.DoubleAt(1, 2), 2.0);
  EXPECT_EQ(table_.GetValue(0, 1).str(), "A");
  EXPECT_EQ(table_.GetValue(0, 0).type(), ValueType::kTimestamp);
}

TEST_F(EventTableTest, DictionarySharedAcrossRows) {
  (void)table_.AppendRow(
      {Value::Timestamp(1), Value::String("A"), Value::Double(0)});
  (void)table_.AppendRow(
      {Value::Timestamp(2), Value::String("A"), Value::Double(0)});
  EXPECT_EQ(table_.CodeAt(0, 1), table_.CodeAt(1, 1));
  ASSERT_NE(table_.dictionary(1), nullptr);
  EXPECT_EQ(table_.dictionary(1)->size(), 1u);
  EXPECT_EQ(table_.dictionary(0), nullptr);  // non-string column
}

TEST_F(EventTableTest, RejectsArityMismatch) {
  Status s = table_.AppendRow({Value::Timestamp(1)});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(EventTableTest, RejectsTypeMismatch) {
  Status s = table_.AppendRow(
      {Value::String("oops"), Value::String("A"), Value::Double(0)});
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("'t'"), std::string::npos);
}

}  // namespace
}  // namespace solap
