// Unit tests for the sequence layer: dimension bindings, sequence groups,
// the formation pipeline (steps 1-4 of S-cuboid construction), and caching.
#include <gtest/gtest.h>

#include "paper_fixtures.h"
#include "solap/seq/sequence_cache.h"
#include "solap/seq/sequence_query_engine.h"

namespace solap {
namespace {

using testing::Fig8Hierarchies;
using testing::Fig8RawGroups;
using testing::Fig8Table;

TEST(DimensionBindingTest, StringIdentityAndHierarchyLevels) {
  auto table = Fig8Table();
  auto reg = Fig8Hierarchies();
  auto station = DimensionBinding::MakeForTable(*table, reg.get(),
                                                {"location", "station"});
  ASSERT_TRUE(station.ok());
  EXPECT_EQ(station->Label(station->CodeOf(*table, 0)), "Glenmont");

  auto district = DimensionBinding::MakeForTable(*table, reg.get(),
                                                 {"location", "district"});
  ASSERT_TRUE(district.ok());
  EXPECT_EQ(district->Label(district->CodeOf(*table, 0)), "D20");
  // Row 1 is Pentagon; the two code paths must agree.
  EXPECT_EQ(district->CodeOf(*table, 1),
            district->MapBaseCode(station->CodeOf(*table, 1)));
}

TEST(DimensionBindingTest, CalendarLevels) {
  auto table = Fig8Table();
  auto day = DimensionBinding::MakeForTable(*table, nullptr, {"time", "day"});
  ASSERT_TRUE(day.ok());
  EXPECT_EQ(day->Label(day->CodeOf(*table, 0)), "2007-12-25");
  auto bad =
      DimensionBinding::MakeForTable(*table, nullptr, {"time", "stardate"});
  EXPECT_FALSE(bad.ok());
}

TEST(DimensionBindingTest, RejectsUnknownLevelAndMeasureAttr) {
  auto table = Fig8Table();
  auto reg = Fig8Hierarchies();
  EXPECT_FALSE(DimensionBinding::MakeForTable(*table, reg.get(),
                                              {"location", "continent"})
                   .ok());
  EXPECT_FALSE(
      DimensionBinding::MakeForTable(*table, reg.get(), {"amount", "amount"})
          .ok());
}

TEST(DimensionBindingTest, CodeOfLabelAndAllowedCodes) {
  auto table = Fig8Table();
  auto reg = Fig8Hierarchies();
  auto station = DimensionBinding::MakeForTable(*table, reg.get(),
                                                {"location", "station"});
  ASSERT_TRUE(station.ok());
  auto code = station->CodeOfLabel("Pentagon");
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(station->Label(*code), "Pentagon");
  EXPECT_EQ(*station->CodeOfLabel("Atlantis"), kNullCode);

  // A district-level slice expands to its member stations.
  auto allowed = station->AllowedCodes("district", {"D10"});
  ASSERT_TRUE(allowed.ok()) << allowed.status().ToString();
  EXPECT_EQ(allowed->size(), 2u);  // Pentagon + Clarendon
}

TEST(SequenceGroupTest, CsrStorageAndViews) {
  auto set = Fig8RawGroups();
  SequenceGroup& g = set->groups()[0];
  EXPECT_EQ(g.num_sequences(), 4u);
  EXPECT_EQ(g.length(0), 6u);
  EXPECT_EQ(g.length(2), 2u);
  EXPECT_EQ(g.total_events(), 16u);

  auto reg = Fig8Hierarchies();
  auto b = set->BindDimension(reg.get(), {"symbol", "symbol"});
  ASSERT_TRUE(b.ok());
  const std::vector<Code>& view = g.ViewFor(*b);
  std::span<const Code> s2 = g.Symbols(view, 1);
  ASSERT_EQ(s2.size(), 4u);
  EXPECT_EQ(b->Label(s2[0]), "Pentagon");
  EXPECT_EQ(b->Label(s2[3]), "Pentagon");
  // Same-level view is cached (same address).
  EXPECT_EQ(&g.ViewFor(*b), &view);

  auto dist = set->BindDimension(reg.get(), {"symbol", "district"});
  ASSERT_TRUE(dist.ok());
  const std::vector<Code>& dview = g.ViewFor(*dist);
  EXPECT_EQ(dist->Label(g.Symbols(dview, 1)[0]), "D10");
}

TEST(SequenceGroupSetTest, RawDimensionValidation) {
  auto set = Fig8RawGroups();
  EXPECT_FALSE(set->BindDimension(nullptr, {"location", "station"}).ok());
  EXPECT_TRUE(set->BindDimension(nullptr, {"symbol", "symbol"}).ok());
}

class FormationTest : public ::testing::Test {
 protected:
  FormationTest() : table_(Fig8Table()), reg_(Fig8Hierarchies()) {}

  SequenceSpec BaseSpec() {
    SequenceSpec s;
    s.cluster_by = {{"card-id", "card-id"}, {"time", "day"}};
    s.sequence_by = "time";
    return s;
  }

  std::shared_ptr<EventTable> table_;
  std::shared_ptr<HierarchyRegistry> reg_;
};

TEST_F(FormationTest, ClusterAndOrderReproducesFig8) {
  SequenceQueryEngine sqe(reg_.get());
  auto set = sqe.Build(*table_, BaseSpec());
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_EQ((*set)->groups().size(), 1u);  // no SEQUENCE GROUP BY
  SequenceGroup& g = (*set)->groups()[0];
  ASSERT_EQ(g.num_sequences(), 4u);
  size_t total = 0;
  for (Sid s = 0; s < 4; ++s) total += g.length(s);
  EXPECT_EQ(total, 16u);
  // Each sequence's rows must be time-ordered.
  for (Sid s = 0; s < 4; ++s) {
    auto rows = g.Rows(s);
    for (size_t i = 1; i < rows.size(); ++i) {
      EXPECT_LE(table_->Int64At(rows[i - 1], 0), table_->Int64At(rows[i], 0));
    }
  }
}

TEST_F(FormationTest, WhereClauseFiltersEvents) {
  SequenceSpec spec = BaseSpec();
  spec.where =
      Expr::Eq(Expr::Col("card-id"), Expr::Lit(Value::String("688")));
  SequenceQueryEngine sqe(reg_.get());
  auto set = sqe.Build(*table_, spec);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ((*set)->total_sequences(), 1u);
  EXPECT_EQ((*set)->groups()[0].total_events(), 6u);
}

TEST_F(FormationTest, DescendingOrderReversesSequences) {
  SequenceSpec asc = BaseSpec();
  SequenceSpec desc = BaseSpec();
  desc.ascending = false;
  SequenceQueryEngine sqe(reg_.get());
  auto sa = sqe.Build(*table_, asc);
  auto sd = sqe.Build(*table_, desc);
  ASSERT_TRUE(sa.ok() && sd.ok());
  auto ra = (*sa)->groups()[0].Rows(0);
  auto rd = (*sd)->groups()[0].Rows(0);
  ASSERT_EQ(ra.size(), rd.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i], rd[rd.size() - 1 - i]);
  }
}

TEST_F(FormationTest, SequenceGroupByPartitionsByFareGroup) {
  SequenceSpec spec = BaseSpec();
  spec.group_by = {{"card-id", "fare-group"}};
  auto card_h = std::make_shared<ConceptHierarchy>(
      std::vector<std::string>{"card-id", "fare-group"});
  (void)card_h->SetParent(0, "688", "regular");
  (void)card_h->SetParent(0, "23456", "regular");
  (void)card_h->SetParent(0, "1012", "student");
  (void)card_h->SetParent(0, "77", "student");
  reg_->Register("card-id", card_h);
  SequenceQueryEngine sqe(reg_.get());
  auto set = sqe.Build(*table_, spec);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_EQ((*set)->groups().size(), 2u);
  EXPECT_EQ((*set)->groups()[0].num_sequences(), 2u);
  EXPECT_EQ((*set)->groups()[1].num_sequences(), 2u);
  auto labels0 = (*set)->KeyLabels((*set)->groups()[0].key());
  ASSERT_EQ(labels0.size(), 1u);
  EXPECT_TRUE(labels0[0] == "regular" || labels0[0] == "student");
}

TEST_F(FormationTest, ErrorsOnBadSpecs) {
  SequenceQueryEngine sqe(reg_.get());
  SequenceSpec no_cluster;
  no_cluster.sequence_by = "time";
  EXPECT_FALSE(sqe.Build(*table_, no_cluster).ok());
  SequenceSpec bad_order = BaseSpec();
  bad_order.sequence_by = "location";  // string: not a valid order attr
  EXPECT_FALSE(sqe.Build(*table_, bad_order).ok());
  SequenceSpec bad_attr = BaseSpec();
  bad_attr.cluster_by = {{"nope", "nope"}};
  EXPECT_FALSE(sqe.Build(*table_, bad_attr).ok());
}

TEST_F(FormationTest, SequenceCacheRoundTrip) {
  SequenceCache cache;
  SequenceSpec spec = BaseSpec();
  EXPECT_EQ(cache.Lookup(spec), nullptr);
  SequenceQueryEngine sqe(reg_.get());
  auto set = sqe.Build(*table_, spec);
  ASSERT_TRUE(set.ok());
  cache.Insert(spec, *set);
  EXPECT_EQ(cache.Lookup(spec), *set);
  SequenceSpec other = BaseSpec();
  other.ascending = false;
  EXPECT_EQ(cache.Lookup(other), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace solap
