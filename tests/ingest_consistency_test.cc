// The streaming-ingestion consistency contract (docs/INGESTION.md): a query
// stream running CONCURRENTLY with an append stream must produce, for every
// epoch it observes, an answer bit-identical to a fresh engine rebuilt over
// exactly the rows committed at that epoch.
//
// The oracle exploits two structural facts. The table is append-only, so
// the first k rows at any instant equal the first k rows of the final
// table. And only ingest commits advance the epoch (+2 each; merges and
// dictionary syncs abandon their write slot), so with a fixed batch size R
// and B base rows, a reader observing epoch e saw exactly the first
// B + R * (e / 2) rows — no matter how the writers interleaved.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "paper_fixtures.h"
#include "solap/cube/partial_codec.h"
#include "solap/engine/engine.h"
#include "solap/engine/sharded_engine.h"

namespace solap {
namespace {

using testing::Fig8Hierarchies;
using testing::Fig8Table;

constexpr size_t kBatch = 2;             // rows per committed batch (R)
constexpr size_t kWriters = 2;
constexpr size_t kBatchesPerWriter = 10;
constexpr size_t kReaders = 2;

CuboidSpec SimpleSpec() {
  CuboidSpec s;
  s.seq.cluster_by = {{"card-id", "card-id"}};
  s.seq.sequence_by = "time";
  s.symbols = {"X"};
  s.dims = {PatternDim{"X", {"location", "station"}, {}, ""}};
  return s;
}

std::string Canonical(const SCuboid& c) {
  return EncodeShardPartial(c, ScanStats{});
}

EngineOptions BaseOptions() {
  EngineOptions o;
  o.auto_delta_merge = false;  // merges run via the explicit kicker thread
  return o;
}

// Writer w's batch b: two events of one sequence. Unique timestamps per
// (writer, batch) keep event order deterministic; most batches mint a NEW
// card (the patch path), every fifth extends card "688" (the invalidation
// path).
std::vector<std::vector<Value>> WriterBatch(size_t w, size_t b) {
  const int64_t t =
      MakeTimestamp(2007, 12, 26, 0, 0, 0) + static_cast<int64_t>(w) * 100000 +
      static_cast<int64_t>(b) * 600;
  const std::string card = (b % 5 == 4)
                               ? "688"
                               : "w" + std::to_string(w) + "-" +
                                     std::to_string(b);
  const char* station = (b % 2 == 0) ? "Pentagon" : "Wheaton";
  return {{Value::Timestamp(t), Value::String(card), Value::String(station),
           Value::String("in"), Value::Double(0.0)},
          {Value::Timestamp(t + 60), Value::String(card),
           Value::String("Clarendon"), Value::String("out"),
           Value::Double(-2.0)}};
}

// A fresh table holding the first `rows` rows of `src`.
std::shared_ptr<EventTable> CopyPrefix(const EventTable& src, size_t rows) {
  auto out = std::make_shared<EventTable>(src.schema());
  const size_t cols = src.schema().num_fields();
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> row;
    row.reserve(cols);
    for (size_t c = 0; c < cols; ++c) {
      row.push_back(src.GetValue(static_cast<RowId>(r), static_cast<int>(c)));
    }
    EXPECT_TRUE(out->AppendRow(row).ok());
  }
  return out;
}

// Thread-safe (epoch -> canonical answer) journal. Two concurrent reads
// observing the same epoch must agree bit-for-bit; the journal checks that
// on insert and keeps one exemplar per epoch for the post-hoc rebuild.
class EpochJournal {
 public:
  void Record(uint64_t epoch, const std::string& canonical) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = seen_.emplace(epoch, canonical);
    if (!inserted) {
      EXPECT_EQ(it->second, canonical)
          << "two readers disagreed at epoch " << epoch;
    }
  }
  std::map<uint64_t, std::string> Snapshot() {
    std::lock_guard<std::mutex> lock(mu_);
    return seen_;
  }

 private:
  std::mutex mu_;
  std::map<uint64_t, std::string> seen_;
};

// Drives writers/readers/merge-kicker against `execute` + `ingest` +
// `merge`, then verifies every observed epoch against `rebuild`.
struct Harness {
  std::function<Result<std::string>(uint64_t* epoch_out)> execute;
  std::function<Status(const std::vector<std::vector<Value>>&)> ingest;
  std::function<Status()> merge;
  // Fresh-engine answer over the first `rows` rows of the final table.
  std::function<std::string(size_t rows)> rebuild;

  void Run(size_t base_rows) {
    EpochJournal journal;
    std::atomic<bool> done{false};
    std::vector<std::thread> threads;

    for (size_t rdr = 0; rdr < kReaders; ++rdr) {
      threads.emplace_back([&] {
        do {
          const bool last = done.load();
          uint64_t epoch = 0;
          auto r = execute(&epoch);
          if (!r.ok()) {
            ADD_FAILURE() << "reader: " << r.status().ToString();
            return;
          }
          EXPECT_EQ(epoch % 2, 0u) << "reader observed an odd epoch";
          journal.Record(epoch, *r);
          if (last) break;  // one guaranteed read after the final commit
        } while (true);
      });
    }
    threads.emplace_back([&] {  // merge kicker: never advances the epoch
      while (!done.load()) {
        Status s = merge();
        EXPECT_TRUE(s.ok()) << s.ToString();
        std::this_thread::yield();
      }
    });
    std::vector<std::thread> writers;
    for (size_t w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        for (size_t b = 0; b < kBatchesPerWriter; ++b) {
          Status s = ingest(WriterBatch(w, b));
          EXPECT_TRUE(s.ok()) << "writer " << w << ": " << s.ToString();
        }
      });
    }
    for (auto& t : writers) t.join();
    done.store(true);
    for (auto& t : threads) t.join();

    const auto seen = journal.Snapshot();
    ASSERT_FALSE(seen.empty());
    // The final epoch must have been observed (the guaranteed last read).
    EXPECT_EQ(seen.rbegin()->first, 2 * kWriters * kBatchesPerWriter);
    for (const auto& [epoch, canonical] : seen) {
      const size_t rows = base_rows + kBatch * (epoch / 2);
      EXPECT_EQ(rebuild(rows), canonical)
          << "epoch " << epoch << " (" << rows
          << " rows) diverged from a fresh rebuild";
    }
  }
};

TEST(IngestConsistencyTest, MonolithicEngineBitIdenticalPerEpoch) {
  auto table = Fig8Table();
  auto reg = Fig8Hierarchies();
  SOlapEngine engine(table.get(), reg.get(), BaseOptions());
  const size_t base_rows = table->num_rows();

  Harness h;
  h.execute = [&](uint64_t* epoch_out) -> Result<std::string> {
    ExecControl control;
    control.epoch_out = epoch_out;
    SOLAP_ASSIGN_OR_RETURN(
        auto cuboid, engine.Execute(SimpleSpec(), ExecStrategy::kAuto, control));
    return Canonical(*cuboid);
  };
  h.ingest = [&](const std::vector<std::vector<Value>>& rows) {
    return engine.IngestRows(rows);
  };
  h.merge = [&] { return engine.MergeDeltasNow(); };
  h.rebuild = [&](size_t rows) {
    auto fresh_table = CopyPrefix(*table, rows);
    SOlapEngine fresh(fresh_table.get(), reg.get(), BaseOptions());
    auto r = fresh.Execute(SimpleSpec(), ExecStrategy::kAuto);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? Canonical(**r) : std::string();
  };
  h.Run(base_rows);
}

TEST(IngestConsistencyTest, ShardedEngineBitIdenticalPerEpoch) {
  auto table = Fig8Table();
  auto reg = Fig8Hierarchies();
  EngineOptions opts = BaseOptions();
  opts.shards = 2;
  opts.shard_by = "card-id";
  ShardedEngine engine(table.get(), reg.get(), opts);
  const size_t base_rows = table->num_rows();

  Harness h;
  h.execute = [&](uint64_t* epoch_out) -> Result<std::string> {
    ExecControl control;
    control.epoch_out = epoch_out;
    SOLAP_ASSIGN_OR_RETURN(
        auto cuboid, engine.Execute(SimpleSpec(), ExecStrategy::kAuto, control));
    return Canonical(*cuboid);
  };
  h.ingest = [&](const std::vector<std::vector<Value>>& rows) {
    return engine.IngestRows(rows);
  };
  h.merge = [&] { return engine.MergeDeltasNow(); };
  h.rebuild = [&](size_t rows) {
    auto fresh_table = CopyPrefix(*table, rows);
    ShardedEngine fresh(fresh_table.get(), reg.get(), opts);
    auto r = fresh.Execute(SimpleSpec(), ExecStrategy::kAuto);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? Canonical(**r) : std::string();
  };
  h.Run(base_rows);
}

}  // namespace
}  // namespace solap
