// Parallel inverted-index execution must be bit-identical to serial
// execution: the join/merge partitions shard disjoint key ranges and merge
// in a deterministic order, so even floating-point SUM state matches
// exactly (ISSUE: "II execution" in DESIGN.md). These tests pin that
// contract for plain joins, kernel policies, P-ROLL-UP merges and the
// pool-backed CB scan.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "solap/engine/engine.h"
#include "solap/engine/operations.h"
#include "solap/gen/synthetic.h"
#include "solap/gen/transit.h"

namespace solap {
namespace {

// Exact comparison of the full aggregate state of every cell — not just
// counts: bit-identical means the double-valued SUM/MIN/MAX state agrees
// to the last ulp.
void ExpectCuboidsIdentical(const SCuboid& a, const SCuboid& b,
                            const char* what) {
  ASSERT_EQ(a.num_cells(), b.num_cells()) << what;
  for (const auto& [key, cell] : a.cells()) {
    CellValue other = b.CellAt(key);
    EXPECT_EQ(cell.count, other.count) << what;
    EXPECT_EQ(cell.sum, other.sum) << what;  // exact, not near
    EXPECT_TRUE(cell.min == other.min ||
                (std::isinf(cell.min) && std::isinf(other.min)))
        << what;
    EXPECT_TRUE(cell.max == other.max ||
                (std::isinf(cell.max) && std::isinf(other.max)))
        << what;
  }
}

CuboidSpec TripleSpec() {
  CuboidSpec spec;
  spec.symbols = {"X", "Y", "Z"};
  spec.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""},
               PatternDim{"Y", {SyntheticData::kAttr, "symbol"}, {}, ""},
               PatternDim{"Z", {SyntheticData::kAttr, "symbol"}, {}, ""}};
  return spec;
}

EngineOptions ParallelOpts() {
  EngineOptions o;
  o.default_strategy = ExecStrategy::kInvertedIndex;
  o.exec_threads = 4;
  o.parallel_min_lists = 1;  // force the sharded path even on tiny joins
  o.parallel_min_work = 1;   // ... and past the work-size cutoff too
  return o;
}

TEST(ParallelII, JoinsIdenticalToSerial) {
  SyntheticParams p;
  p.num_sequences = 2000;
  p.num_symbols = 25;
  p.mean_length = 10;
  SyntheticData data = GenerateSynthetic(p);
  CuboidSpec spec = TripleSpec();

  SOlapEngine serial(data.groups, data.hierarchies.get());
  SOlapEngine parallel(data.groups, data.hierarchies.get(), ParallelOpts());
  auto a = serial.Execute(spec, ExecStrategy::kInvertedIndex);
  auto b = parallel.Execute(spec, ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ExpectCuboidsIdentical(**a, **b, "parallel join");
  // Same work was done, just partitioned.
  EXPECT_EQ(serial.stats().list_intersections,
            parallel.stats().list_intersections);
  EXPECT_EQ(serial.stats().sequences_scanned,
            parallel.stats().sequences_scanned);
}

TEST(ParallelII, KernelPoliciesAgree) {
  SyntheticParams p;
  p.num_sequences = 1500;
  p.num_symbols = 12;  // dense lists: triggers the bitmap density heuristic
  p.mean_length = 12;
  p.theta = 1.2;       // skewed symbol frequencies: triggers galloping
  SyntheticData data = GenerateSynthetic(p);
  CuboidSpec spec = TripleSpec();

  EngineOptions scalar;
  scalar.adaptive_join_kernels = false;
  EngineOptions adaptive;  // defaults: adaptive on, serial
  EngineOptions adaptive_parallel = ParallelOpts();
  EngineOptions bitmap_forced;
  bitmap_forced.bitmap_join_threshold = 8;

  SOlapEngine e0(data.groups, data.hierarchies.get(), scalar);
  SOlapEngine e1(data.groups, data.hierarchies.get(), adaptive);
  SOlapEngine e2(data.groups, data.hierarchies.get(), adaptive_parallel);
  SOlapEngine e3(data.groups, data.hierarchies.get(), bitmap_forced);
  auto r0 = e0.Execute(spec, ExecStrategy::kInvertedIndex);
  auto r1 = e1.Execute(spec, ExecStrategy::kInvertedIndex);
  auto r2 = e2.Execute(spec, ExecStrategy::kInvertedIndex);
  auto r3 = e3.Execute(spec, ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(r0.ok() && r1.ok() && r2.ok() && r3.ok());
  ExpectCuboidsIdentical(**r0, **r1, "scalar vs adaptive");
  ExpectCuboidsIdentical(**r0, **r2, "scalar vs adaptive parallel");
  ExpectCuboidsIdentical(**r0, **r3, "scalar vs forced bitmap");
}

TEST(ParallelII, RollUpMergeIdenticalToSerial) {
  SyntheticParams p;
  p.num_sequences = 1200;
  p.num_symbols = 30;
  p.mean_length = 9;
  SyntheticData data = GenerateSynthetic(p);

  CuboidSpec fine;
  fine.symbols = {"X", "Y"};
  fine.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""},
               PatternDim{"Y", {SyntheticData::kAttr, "symbol"}, {}, ""}};
  CuboidSpec coarse = fine;
  coarse.dims[0].ref = {SyntheticData::kAttr, "group"};
  coarse.dims[1].ref = {SyntheticData::kAttr, "group"};

  SOlapEngine serial(data.groups, data.hierarchies.get());
  SOlapEngine parallel(data.groups, data.hierarchies.get(), ParallelOpts());
  // Warm each engine with the fine-level index, then roll up: the coarse
  // query derives its index via RollUpMerge (serial vs pool-backed).
  for (SOlapEngine* e : {&serial, &parallel}) {
    auto warm = e->Execute(fine, ExecStrategy::kInvertedIndex);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  }
  auto a = serial.Execute(coarse, ExecStrategy::kInvertedIndex);
  auto b = parallel.Execute(coarse, ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectCuboidsIdentical(**a, **b, "parallel roll-up");
}

TEST(ParallelII, PoolBackedCounterScanIdentical) {
  TransitParams tp;
  tp.num_passengers = 3000;
  tp.num_days = 1;
  TransitData transit = GenerateTransit(tp);
  CuboidSpec spec;
  spec.agg = AggKind::kSum;
  spec.measure = "amount";
  spec.seq.cluster_by = {{"card-id", "individual"}};
  spec.seq.sequence_by = "time";
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {"location", "station"}, {}, ""},
               PatternDim{"Y", {"location", "station"}, {}, ""}};

  EngineOptions pooled;
  pooled.exec_threads = 4;
  pooled.cb_threads = 0;  // auto: use the whole compute pool
  SOlapEngine serial(transit.table.get(), transit.hierarchies.get());
  SOlapEngine parallel(transit.table.get(), transit.hierarchies.get(),
                       pooled);
  auto a = serial.Execute(spec, ExecStrategy::kCounterBased);
  auto b = parallel.Execute(spec, ExecStrategy::kCounterBased);
  ASSERT_TRUE(a.ok() && b.ok());
  // Counts and the per-cell membership must match; SUM order within a cell
  // can differ across partitions, so compare counts exactly and sums to
  // double precision.
  ASSERT_EQ((*a)->num_cells(), (*b)->num_cells());
  for (const auto& [key, cell] : (*a)->cells()) {
    CellValue other = (*b)->CellAt(key);
    EXPECT_EQ(cell.count, other.count);
    EXPECT_NEAR(cell.sum, other.sum, 1e-6 * (1.0 + std::fabs(cell.sum)));
  }
}

}  // namespace
}  // namespace solap
