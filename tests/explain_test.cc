// EXPLAIN / EXPLAIN ANALYZE: statement parsing, the optimizer-plan
// rendering, and the span-tree output (golden structure, timing fields
// tolerated by construction — only names and invariants are asserted).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "solap/parser/parser.h"
#include "solap/tools/shell.h"

namespace solap {
namespace {

// Runs a scripted session; returns everything the shell printed.
std::string RunScript(const std::string& script) {
  std::ostringstream out;
  ShellSession session(out);
  std::istringstream in(script);
  session.Run(in);
  return out.str();
}

constexpr const char kQa[] = R"(
select COUNT(*) FROM Event
  CLUSTER BY session-id AT session-id
  SEQUENCE BY request-time ASCENDING
  CUBOID BY SUBSTRING (X, Y)
    WITH X AS page AT page-category, Y AS page AT page-category
    LEFT-MAXIMALITY;
)";

TEST(ParseStatementTest, PlainQueryHasNoExplainMode) {
  auto stmt = ParseStatement(
      "SELECT COUNT(*) FROM E CLUSTER BY a AT a SEQUENCE BY t CUBOID BY "
      "SUBSTRING (X) WITH X AS p AT p LEFT-MAXIMALITY");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->explain, ExplainMode::kNone);
  EXPECT_EQ(stmt->spec.symbols.size(), 1u);
}

TEST(ParseStatementTest, ExplainAndExplainAnalyzePrefixes) {
  const std::string body =
      "SELECT COUNT(*) FROM E CLUSTER BY a AT a SEQUENCE BY t CUBOID BY "
      "SUBSTRING (X) WITH X AS p AT p LEFT-MAXIMALITY";
  auto plan = ParseStatement("EXPLAIN " + body);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->explain, ExplainMode::kPlan);
  auto analyze = ParseStatement("explain analyze " + body);  // case folds
  ASSERT_TRUE(analyze.ok()) << analyze.status().ToString();
  EXPECT_EQ(analyze->explain, ExplainMode::kAnalyze);
  EXPECT_EQ(analyze->spec.CanonicalString(), plan->spec.CanonicalString());
}

TEST(ParseStatementTest, ExplainWithoutQueryIsAnError) {
  EXPECT_FALSE(ParseStatement("EXPLAIN").ok());
  EXPECT_FALSE(ParseStatement("EXPLAIN ANALYZE").ok());
}

TEST(ExplainTest, PlanRendersOptimizerVerdictWithoutExecuting) {
  std::string out = RunScript(std::string("generate clickstream 300\n") +
                              "explain " + (kQa + 1) + "stats\nquit\n");
  EXPECT_NE(out.find("EXPLAIN\n"), std::string::npos) << out;
  EXPECT_NE(out.find("strategy: "), std::string::npos);
  EXPECT_NE(out.find("reason: "), std::string::npos);
  EXPECT_NE(out.find("cost estimate (sequences touched): cb="),
            std::string::npos);
  EXPECT_NE(out.find("group 0: "), std::string::npos);
  EXPECT_NE(out.find("ii source: "), std::string::npos);
  // No execution happened: nothing was scanned and no cuboid was printed.
  EXPECT_NE(out.find("scanned=0"), std::string::npos) << out;
  EXPECT_EQ(out.find(" cells in "), std::string::npos);
  EXPECT_EQ(out.find("error:"), std::string::npos) << out;
}

TEST(ExplainTest, PlanReportsCachedIndexReuse) {
  // Run Qa once with the II strategy (caches the exact index), then
  // EXPLAIN the identical query: the plan must name the cached index.
  std::string out = RunScript(std::string("generate clickstream 300\n") +
                              "strategy ii\n" + (kQa + 1) + "explain " +
                              (kQa + 1) + "quit\n");
  EXPECT_NE(out.find("exact cached index"), std::string::npos) << out;
  EXPECT_NE(out.find("reuses "), std::string::npos) << out;
  EXPECT_EQ(out.find("error:"), std::string::npos) << out;
}

// Extracts "total <ms> ms" from the EXPLAIN ANALYZE header.
double TotalMsOf(const std::string& out) {
  size_t pos = out.find("EXPLAIN ANALYZE  total ");
  if (pos == std::string::npos) return -1;
  return std::strtod(out.c_str() + pos + 23, nullptr);
}

// Sums every "self <ms> ms" column of the span-tree rendering.
double SumSelfTimes(const std::string& out) {
  double sum = 0;
  size_t pos = 0;
  while ((pos = out.find(" self ", pos)) != std::string::npos) {
    pos += 6;
    sum += std::strtod(out.c_str() + pos, nullptr);
  }
  return sum;
}

TEST(ExplainTest, AnalyzeRendersSpanTreeWithSelfTimesNearTotal) {
  std::string out = RunScript(std::string("generate clickstream 2000\n") +
                              "explain analyze " + (kQa + 1) + "quit\n");
  EXPECT_NE(out.find("EXPLAIN ANALYZE  total "), std::string::npos) << out;
  for (const char* span :
       {"parse", "query", "optimize", "repo.lookup", "prepare", "finalize"}) {
    EXPECT_NE(out.find(span), std::string::npos) << "missing span " << span
                                                 << " in:\n" << out;
  }
  EXPECT_NE(out.find(" cells\n"), std::string::npos);
  EXPECT_EQ(out.find("error:"), std::string::npos) << out;
  // Serial execution telescopes: the self times of all spans sum to the
  // root durations, which cover the total up to inter-span gaps (< 10%).
  const double total = TotalMsOf(out);
  const double self_sum = SumSelfTimes(out);
  ASSERT_GT(total, 0);
  EXPECT_NEAR(self_sum, total, 0.10 * total) << out;
}

TEST(ExplainTest, AnalyzeNamesJoinKernelsOnGrownIndexes) {
  // Qa caches the size-2 [page-category, page-category] index; the
  // 3-symbol follow-up then grows it with a JoinExtend step whose span
  // must name the intersection kernel.
  constexpr const char kQa3[] = R"(
explain analyze select COUNT(*) FROM Event
  CLUSTER BY session-id AT session-id
  SEQUENCE BY request-time ASCENDING
  CUBOID BY SUBSTRING (X, Y, Z)
    WITH X AS page AT page-category, Y AS page AT page-category,
         Z AS page AT page-category
    LEFT-MAXIMALITY;
)";
  std::string out = RunScript(std::string("generate clickstream 500\n") +
                              "strategy ii\n" + (kQa + 1) + (kQa3 + 1) +
                              "quit\n");
  EXPECT_NE(out.find("exec.ii"), std::string::npos) << out;
  EXPECT_NE(out.find("ii.group"), std::string::npos) << out;
  EXPECT_NE(out.find("ii.join_extend"), std::string::npos) << out;
  EXPECT_NE(out.find("ii.count"), std::string::npos) << out;
  EXPECT_NE(out.find("kernel="), std::string::npos) << out;
  EXPECT_EQ(out.find("error:"), std::string::npos) << out;
}

TEST(ExplainTest, AnalyzeThroughServiceRecordsServiceSpans) {
  std::string out = RunScript(std::string("generate clickstream 300\n") +
                              "serve start 2\n" + "explain analyze " +
                              (kQa + 1) + "serve stop\nquit\n");
  EXPECT_NE(out.find("service.admission"), std::string::npos) << out;
  EXPECT_NE(out.find("service.queue_wait"), std::string::npos) << out;
  EXPECT_NE(out.find("service.execute"), std::string::npos) << out;
  EXPECT_EQ(out.find("error:"), std::string::npos) << out;
}

TEST(ExplainTest, AnalyzeWritesChromeTraceJson) {
  const std::string path = ::testing::TempDir() + "solap_trace_test.json";
  std::string out = RunScript(std::string("generate clickstream 300\n") +
                              "explain analyze --trace-out=" + path + " " +
                              (kQa + 1) + "quit\n");
  EXPECT_NE(out.find("chrome trace written to " + path), std::string::npos)
      << out;
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ExplainTest, TraceOutRequiresAnalyze) {
  std::string out = RunScript(std::string("generate clickstream 100\n") +
                              "select --trace-out=/tmp/x.json COUNT(*) "
                              "FROM Event CLUSTER BY session-id AT session-id "
                              "SEQUENCE BY request-time CUBOID BY SUBSTRING "
                              "(X) WITH X AS page AT page-category "
                              "LEFT-MAXIMALITY;\nquit\n");
  EXPECT_NE(out.find("--trace-out requires EXPLAIN ANALYZE"),
            std::string::npos)
      << out;
}

}  // namespace
}  // namespace solap
