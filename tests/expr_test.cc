// Unit tests for expression trees: row-context (WHERE) and match-context
// (matching predicate) evaluation.
#include <gtest/gtest.h>

#include "paper_fixtures.h"
#include "solap/expr/expr.h"

namespace solap {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  ExprTest() : table_(testing::Fig8Table()) {}
  std::shared_ptr<EventTable> table_;
};

TEST_F(ExprTest, ColumnEqualsString) {
  ExprPtr e = Expr::Eq(Expr::Col("location"), Expr::Lit(Value::String(
                                                  "Glenmont")));
  ASSERT_TRUE(e->Bind(table_->schema(), nullptr).ok());
  EXPECT_TRUE(e->EvalRow(*table_, 0).AsBool());   // s1 starts at Glenmont
  EXPECT_FALSE(e->EvalRow(*table_, 1).AsBool());  // then Pentagon
}

TEST_F(ExprTest, TimestampRange) {
  int64_t mid = MakeTimestamp(2007, 12, 25, 8, 2, 0);
  ExprPtr e = Expr::And(
      Expr::Ge(Expr::Col("time"), Expr::Lit(Value::Timestamp(mid))),
      Expr::Lt(Expr::Col("time"),
               Expr::Lit(Value::Timestamp(mid + 120))));
  ASSERT_TRUE(e->Bind(table_->schema(), nullptr).ok());
  EXPECT_FALSE(e->EvalRow(*table_, 0).AsBool());
  EXPECT_TRUE(e->EvalRow(*table_, 2).AsBool());
  EXPECT_TRUE(e->EvalRow(*table_, 3).AsBool());
  EXPECT_FALSE(e->EvalRow(*table_, 4).AsBool());
}

TEST_F(ExprTest, BooleanConnectives) {
  ExprPtr in = Expr::Eq(Expr::Col("action"), Expr::Lit(Value::String("in")));
  ExprPtr out =
      Expr::Eq(Expr::Col("action"), Expr::Lit(Value::String("out")));
  ExprPtr either = Expr::Or(in, out);
  ExprPtr neither = Expr::Not(either);
  ASSERT_TRUE(either->Bind(table_->schema(), nullptr).ok());
  ASSERT_TRUE(neither->Bind(table_->schema(), nullptr).ok());
  EXPECT_TRUE(either->EvalRow(*table_, 0).AsBool());
  EXPECT_FALSE(neither->EvalRow(*table_, 0).AsBool());
}

TEST_F(ExprTest, ComparisonOperators) {
  auto check = [&](ExprPtr e, bool expect) {
    ASSERT_TRUE(e->Bind(table_->schema(), nullptr).ok());
    EXPECT_EQ(e->EvalRow(*table_, 0).AsBool(), expect);
  };
  ExprPtr amt = Expr::Col("amount");
  check(Expr::Eq(amt, Expr::Lit(Value::Double(0.0))), true);
  check(Expr::Ne(amt, Expr::Lit(Value::Double(0.0))), false);
  check(Expr::Le(amt, Expr::Lit(Value::Double(0.0))), true);
  check(Expr::Lt(amt, Expr::Lit(Value::Double(0.0))), false);
  check(Expr::Ge(amt, Expr::Lit(Value::Double(-1.0))), true);
  check(Expr::Gt(amt, Expr::Lit(Value::Double(-1.0))), true);
}

TEST_F(ExprTest, PlaceholderEvaluation) {
  // x1.action = "in" AND y1.action = "out" over matched rows (0, 1).
  ExprPtr e = Expr::And(
      Expr::Eq(Expr::PCol("x1", "action"), Expr::Lit(Value::String("in"))),
      Expr::Eq(Expr::PCol("y1", "action"), Expr::Lit(Value::String("out"))));
  std::vector<std::string> placeholders = {"x1", "y1"};
  ASSERT_TRUE(e->Bind(table_->schema(), &placeholders).ok());
  RowId matched_ok[] = {0, 1};   // in, out
  RowId matched_bad[] = {1, 0};  // out, in
  EXPECT_TRUE(e->EvalMatch(*table_, matched_ok).AsBool());
  EXPECT_FALSE(e->EvalMatch(*table_, matched_bad).AsBool());
}

TEST_F(ExprTest, PlaceholderRejectedOutsidePredicate) {
  ExprPtr e = Expr::Eq(Expr::PCol("x1", "action"),
                       Expr::Lit(Value::String("in")));
  Status s = e->Bind(table_->schema(), nullptr);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("x1.action"), std::string::npos);
}

TEST_F(ExprTest, UnknownPlaceholderAndColumn) {
  std::vector<std::string> placeholders = {"x1"};
  ExprPtr e1 = Expr::Eq(Expr::PCol("zz", "action"),
                        Expr::Lit(Value::String("in")));
  EXPECT_FALSE(e1->Bind(table_->schema(), &placeholders).ok());
  ExprPtr e2 = Expr::Eq(Expr::Col("nope"), Expr::Lit(Value::Int64(1)));
  EXPECT_FALSE(e2->Bind(table_->schema(), nullptr).ok());
}

TEST_F(ExprTest, UsesPlaceholdersDetection) {
  ExprPtr plain = Expr::Eq(Expr::Col("action"), Expr::Lit(Value::Int64(1)));
  ExprPtr ph = Expr::And(
      plain, Expr::Eq(Expr::PCol("x1", "action"), Expr::Lit(Value::Int64(1))));
  EXPECT_FALSE(plain->UsesPlaceholders());
  EXPECT_TRUE(ph->UsesPlaceholders());
}

TEST_F(ExprTest, ToStringIsCanonical) {
  ExprPtr e = Expr::And(
      Expr::Eq(Expr::PCol("x1", "action"), Expr::Lit(Value::String("in"))),
      Expr::Not(Expr::Lt(Expr::Col("amount"), Expr::Lit(Value::Double(0)))));
  EXPECT_EQ(e->ToString(),
            "((x1.action = \"in\") AND NOT ((amount < 0)))");
}

TEST_F(ExprTest, ShortCircuitSemantics) {
  // AND short-circuits: the right side would fail only if evaluated against
  // a string-vs-number comparison, which safely yields false anyway; here we
  // just verify truth tables.
  ExprPtr t = Expr::Lit(Value::Bool(true));
  ExprPtr f = Expr::Lit(Value::Bool(false));
  Schema empty{std::vector<Field>{}};
  EventTable dummy{empty};
  auto eval = [&](ExprPtr e) {
    (void)e->Bind(empty, nullptr);
    return e->EvalRow(dummy, 0).AsBool();
  };
  EXPECT_TRUE(eval(Expr::And(t, t)));
  EXPECT_FALSE(eval(Expr::And(t, f)));
  EXPECT_FALSE(eval(Expr::And(f, t)));
  EXPECT_TRUE(eval(Expr::Or(f, t)));
  EXPECT_TRUE(eval(Expr::Or(t, f)));
  EXPECT_FALSE(eval(Expr::Or(f, f)));
}

}  // namespace
}  // namespace solap
