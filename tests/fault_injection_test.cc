// Fault-injection tests (built only with -DSOLAP_FAILPOINTS=ON): failpoint
// registry semantics, memory-governor accounting, atomic snapshot writes
// under torn-write/sync/rename faults, IO retry, and graceful II→CB query
// degradation with bit-identical results.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "paper_fixtures.h"
#include "solap/common/failpoint.h"
#include "solap/common/mem_budget.h"
#include "solap/common/retry.h"
#include "solap/engine/engine.h"
#include "solap/gen/synthetic.h"
#include "solap/service/query_service.h"
#include "solap/storage/csv.h"
#include "solap/storage/io.h"

#ifndef SOLAP_FAILPOINTS
#error "fault_injection_test requires a -DSOLAP_FAILPOINTS=ON build"
#endif

namespace solap {
namespace {

// Every test leaves the global registry clean.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Global().DisarmAll(); }

  static FailpointConfig ReturnError(StatusCode code = StatusCode::kInternal) {
    FailpointConfig c;
    c.action = FailpointConfig::Action::kReturnError;
    c.code = code;
    return c;
  }
};

// ----------------------------------------------------------------- Registry

TEST_F(FaultTest, UnarmedFailpointIsFree) {
  EXPECT_TRUE(FailpointEval("no.such.point").ok());
  EXPECT_EQ(FailpointRegistry::Global().Evaluations("no.such.point"), 0u);
}

TEST_F(FaultTest, ArmedFailpointFiresWithNameInMessage) {
  FailpointRegistry::Global().Arm("t.always", ReturnError());
  Status s = FailpointEval("t.always");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("t.always"), std::string::npos);
  EXPECT_EQ(FailpointRegistry::Global().Evaluations("t.always"), 1u);
  EXPECT_EQ(FailpointRegistry::Global().Fires("t.always"), 1u);

  FailpointRegistry::Global().Disarm("t.always");
  EXPECT_TRUE(FailpointEval("t.always").ok());
}

TEST_F(FaultTest, EveryNthFiresOnSchedule) {
  FailpointConfig c = ReturnError();
  c.every_nth = 3;
  FailpointRegistry::Global().Arm("t.nth", c);
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(!FailpointEval("t.nth").ok());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
  EXPECT_EQ(FailpointRegistry::Global().Fires("t.nth"), 3u);
}

TEST_F(FaultTest, OneShotFiresExactlyOnce) {
  FailpointConfig c = ReturnError();
  c.one_shot = true;
  FailpointRegistry::Global().Arm("t.once", c);
  EXPECT_FALSE(FailpointEval("t.once").ok());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(FailpointEval("t.once").ok());
  EXPECT_EQ(FailpointRegistry::Global().Fires("t.once"), 1u);
  EXPECT_EQ(FailpointRegistry::Global().Evaluations("t.once"), 11u);
}

TEST_F(FaultTest, ProbabilityIsDeterministicPerSeedAndOrdinal) {
  auto run = [](uint64_t seed) {
    FailpointConfig c;
    c.action = FailpointConfig::Action::kReturnError;
    c.probability = 0.5;
    c.seed = seed;
    FailpointRegistry::Global().Arm("t.prob", c);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(!FailpointEval("t.prob").ok());
    FailpointRegistry::Global().Disarm("t.prob");
    return fired;
  };
  std::vector<bool> a = run(1234), b = run(1234), c = run(99);
  EXPECT_EQ(a, b) << "same seed must reproduce the same fire pattern";
  EXPECT_NE(a, c) << "different seeds should diverge";
  const size_t fires = static_cast<size_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 60u);
  EXPECT_LT(fires, 140u);
}

TEST_F(FaultTest, DelayActionSleepsThenSucceeds) {
  FailpointConfig c;
  c.action = FailpointConfig::Action::kDelay;
  c.delay_ms = 30;
  FailpointRegistry::Global().Arm("t.delay", c);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(FailpointEval("t.delay").ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(25));
}

TEST_F(FaultTest, ThrowActionThrowsBadAlloc) {
  FailpointConfig c;
  c.action = FailpointConfig::Action::kThrowBadAlloc;
  FailpointRegistry::Global().Arm("t.throw", c);
  EXPECT_THROW((void)FailpointEval("t.throw"), std::bad_alloc);
}

TEST_F(FaultTest, DisarmAllClearsEveryPoint) {
  FailpointRegistry::Global().Arm("t.a", ReturnError());
  FailpointRegistry::Global().Arm("t.b", ReturnError());
  EXPECT_EQ(FailpointRegistry::Global().ArmedNames().size(), 2u);
  FailpointRegistry::Global().DisarmAll();
  EXPECT_TRUE(FailpointRegistry::Global().ArmedNames().empty());
  EXPECT_TRUE(FailpointEval("t.a").ok());
  EXPECT_TRUE(FailpointEval("t.b").ok());
}

// ----------------------------------------------------------------- Governor

TEST_F(FaultTest, GovernorChargesReleasesAndRejects) {
  MemoryGovernor g(1000);
  EXPECT_TRUE(g.TryCharge(600, "test").ok());
  EXPECT_EQ(g.used(), 600u);
  Status reject = g.TryCharge(500, "test");
  EXPECT_EQ(reject.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(g.used(), 600u) << "a failed charge must not reserve anything";
  EXPECT_EQ(g.rejects(), 1u);
  EXPECT_TRUE(g.TryCharge(400, "test").ok());
  g.Release(1000);
  EXPECT_EQ(g.used(), 0u);
  g.Release(50);  // over-release saturates, never wraps
  EXPECT_EQ(g.used(), 0u);
}

TEST_F(FaultTest, GovernorZeroBudgetIsUnlimitedButCounted) {
  MemoryGovernor g;
  EXPECT_TRUE(g.TryCharge(size_t{1} << 40, "test").ok());
  EXPECT_EQ(g.used(), size_t{1} << 40);
  EXPECT_EQ(g.rejects(), 0u);
}

TEST_F(FaultTest, MemChargeFailpointInjectsBudgetPressure) {
  FailpointRegistry::Global().Arm(
      "mem.charge", ReturnError(StatusCode::kResourceExhausted));
  MemoryGovernor g;  // unlimited: only the failpoint can reject
  Status s = g.TryCharge(16, "test");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(g.rejects(), 1u);
  EXPECT_EQ(g.used(), 0u);
}

// ------------------------------------------------------------ Snapshot + IO

class SnapshotFaultTest : public FaultTest {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "solap_fault_snapshot.bin";
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  void TearDown() override {
    FaultTest::TearDown();
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  static bool Exists(const std::string& p) {
    return std::ifstream(p, std::ios::binary).good();
  }

  std::string path_;
};

TEST_F(SnapshotFaultTest, TornWriteNeverCorruptsTheDestination) {
  auto old_table = testing::Fig8Table();
  ASSERT_TRUE(SaveTable(*old_table, path_).ok());

  // The torn-write fault leaves a half-written .tmp behind, as a crash
  // mid-write would; the destination must still hold the old snapshot.
  FailpointConfig torn = ReturnError();
  torn.one_shot = true;
  FailpointRegistry::Global().Arm("io.snapshot.write", torn);
  auto bigger = testing::Fig8Table();
  EXPECT_FALSE(SaveTable(*bigger, path_).ok());

  auto survived = LoadTable(path_);
  ASSERT_TRUE(survived.ok()) << survived.status().ToString();
  EXPECT_EQ((*survived)->num_rows(), old_table->num_rows());

  // After the fault clears, the same save goes through and replaces it.
  ASSERT_TRUE(SaveTable(*bigger, path_).ok());
  EXPECT_TRUE(LoadTable(path_).ok());
  EXPECT_FALSE(Exists(path_ + ".tmp"));
}

TEST_F(SnapshotFaultTest, SyncAndRenameFaultsLeaveNoResidue) {
  auto table = testing::Fig8Table();
  ASSERT_TRUE(SaveTable(*table, path_).ok());
  for (const char* point : {"io.snapshot.sync", "io.snapshot.rename",
                            "io.snapshot.open"}) {
    FailpointConfig c = ReturnError();
    c.one_shot = true;
    FailpointRegistry::Global().Arm(point, c);
    EXPECT_FALSE(SaveTable(*table, path_).ok()) << point;
    EXPECT_TRUE(LoadTable(path_).ok()) << point << ": destination corrupted";
    EXPECT_FALSE(Exists(path_ + ".tmp")) << point << ": stale tmp left";
  }
}

TEST_F(SnapshotFaultTest, RetryRecoversFromTransientWriteFault) {
  auto table = testing::Fig8Table();
  const uint64_t before = SnapshotIoRetries();
  FailpointConfig c = ReturnError();  // kInternal: transient
  c.one_shot = true;
  FailpointRegistry::Global().Arm("io.snapshot.sync", c);
  ASSERT_TRUE(SaveTable(*table, path_, RetryPolicy{}).ok());
  EXPECT_GE(SnapshotIoRetries(), before + 1);

  FailpointConfig r = ReturnError();
  r.one_shot = true;
  FailpointRegistry::Global().Arm("io.snapshot.read", r);
  auto loaded = LoadTable(path_, RetryPolicy{});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->num_rows(), table->num_rows());
}

TEST_F(SnapshotFaultTest, RetryGivesUpAfterMaxAttempts) {
  auto table = testing::Fig8Table();
  FailpointRegistry::Global().Arm("io.snapshot.sync", ReturnError());
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = std::chrono::milliseconds(1);
  EXPECT_FALSE(SaveTable(*table, path_, policy).ok());
  EXPECT_EQ(FailpointRegistry::Global().Fires("io.snapshot.sync"), 3u);
}

TEST_F(FaultTest, CsvReadFaultSurfacesMidStream) {
  FailpointConfig c = ReturnError();
  c.every_nth = 2;  // survive line 1, fail on line 2
  FailpointRegistry::Global().Arm("csv.read", c);
  Schema schema({{"t", ValueType::kInt64, FieldRole::kDimension},
                 {"x", ValueType::kString, FieldRole::kDimension}});
  std::istringstream in("t,x\n1,a\n2,b\n3,c\n");
  auto table = LoadCsv(schema, in);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInternal);
}

// ------------------------------------------------------ Engine degradation

class DegradeTest : public FaultTest {
 protected:
  DegradeTest() {
    SyntheticParams p;
    p.num_sequences = 2000;
    p.num_symbols = 25;
    p.seed = 7;
    data_ = GenerateSynthetic(p);
  }

  static CuboidSpec XYSpec() {
    CuboidSpec spec;
    spec.symbols = {"X", "Y"};
    spec.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""},
                 PatternDim{"Y", {SyntheticData::kAttr, "symbol"}, {}, ""}};
    return spec;
  }

  // Three positions force the L3 = L2 ⋈ L2 growth step, so the join
  // failpoints actually sit on the executed path.
  static CuboidSpec XYZSpec() {
    CuboidSpec spec = XYSpec();
    spec.symbols.push_back("Z");
    spec.dims.push_back(
        PatternDim{"Z", {SyntheticData::kAttr, "symbol"}, {}, ""});
    return spec;
  }

  std::shared_ptr<const SCuboid> Reference(const CuboidSpec& spec) {
    SOlapEngine engine(data_.groups, data_.hierarchies.get());
    auto r = engine.Execute(spec, ExecStrategy::kCounterBased);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }

  static void ExpectIdentical(const SCuboid& got, const SCuboid& want) {
    ASSERT_EQ(got.num_cells(), want.num_cells());
    for (const auto& [key, cell] : want.cells()) {
      EXPECT_EQ(got.CellAt(key).count, cell.count);
    }
  }

  SyntheticData data_;
};

TEST_F(DegradeTest, TransientIndexFaultDegradesToCbBitIdentically) {
  struct Case {
    const char* point;
    CuboidSpec spec;
  };
  const std::vector<Case> cases = {{"index.build", XYSpec()},
                                   {"index.join", XYZSpec()},
                                   {"join.scratch", XYZSpec()}};
  for (const Case& c : cases) {
    auto want = Reference(c.spec);
    FailpointRegistry::Global().Arm(c.point, ReturnError());
    SOlapEngine engine(data_.groups, data_.hierarchies.get());
    ScanStats stats;
    ExecControl control;
    control.stats_out = &stats;
    auto got = engine.Execute(c.spec, ExecStrategy::kInvertedIndex, control);
    ASSERT_TRUE(got.ok()) << c.point << ": " << got.status().ToString();
    EXPECT_EQ(stats.degraded_queries, 1u) << c.point;
    ExpectIdentical(**got, *want);
    FailpointRegistry::Global().DisarmAll();
  }
}

TEST_F(DegradeTest, BadAllocInsideIiDegradesToCb) {
  auto want = Reference(XYSpec());
  FailpointConfig c;
  c.action = FailpointConfig::Action::kThrowBadAlloc;
  FailpointRegistry::Global().Arm("index.build", c);
  SOlapEngine engine(data_.groups, data_.hierarchies.get());
  ScanStats stats;
  ExecControl control;
  control.stats_out = &stats;
  auto got = engine.Execute(XYSpec(), ExecStrategy::kInvertedIndex, control);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(stats.degraded_queries, 1u);
  ExpectIdentical(**got, *want);
}

TEST_F(DegradeTest, NonTransientErrorsDoNotDegrade) {
  FailpointRegistry::Global().Arm(
      "index.build", ReturnError(StatusCode::kInvalidArgument));
  SOlapEngine engine(data_.groups, data_.hierarchies.get());
  ScanStats stats;
  ExecControl control;
  control.stats_out = &stats;
  auto got = engine.Execute(XYSpec(), ExecStrategy::kInvertedIndex, control);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(stats.degraded_queries, 0u);
}

TEST_F(DegradeTest, DegradedQueriesFlowIntoServiceMetrics) {
  FailpointRegistry::Global().Arm("index.build", ReturnError());
  SOlapEngine engine(data_.groups, data_.hierarchies.get());
  QueryService service(&engine);
  SubmitOptions ii;
  ii.strategy = ExecStrategy::kInvertedIndex;
  QueryResponse resp = service.Run(XYSpec(), ii);
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(service.metrics().counter("degraded_queries")->Value(), 1u);
  service.RefreshResourceMetrics();
  EXPECT_NE(service.metrics().ToString().find("degraded_queries"),
            std::string::npos);
}

TEST_F(FaultTest, FormationBadAllocIsCaughtAtTheQueryBoundary) {
  // Table-backed engines run sequence formation (raw-group engines skip
  // it); a bad_alloc thrown there must surface as a per-query
  // ResourceExhausted, not a crash — and not a degraded result, since no
  // strategy can answer without the groups.
  auto table = testing::Fig8Table();
  auto reg = testing::Fig8Hierarchies();
  CuboidSpec spec;
  spec.seq.cluster_by = {{"card-id", "card-id"}};
  spec.seq.sequence_by = "time";
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {"location", "station"}, {}, ""},
               PatternDim{"Y", {"location", "station"}, {}, ""}};

  FailpointConfig c;
  c.action = FailpointConfig::Action::kThrowBadAlloc;
  FailpointRegistry::Global().Arm("engine.formation", c);
  SOlapEngine engine(table.get(), reg.get());
  auto got = engine.Execute(spec, ExecStrategy::kCounterBased);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kResourceExhausted);

  // Disarmed, the same engine answers normally.
  FailpointRegistry::Global().DisarmAll();
  auto ok = engine.Execute(spec, ExecStrategy::kCounterBased);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST_F(FaultTest, SubmitFailpointShedsAtAdmission) {
  SyntheticParams p;
  p.num_sequences = 200;
  p.num_symbols = 10;
  SyntheticData data = GenerateSynthetic(p);
  SOlapEngine engine(data.groups, data.hierarchies.get());
  QueryService service(&engine);

  FailpointConfig c = ReturnError(StatusCode::kResourceExhausted);
  c.one_shot = true;
  FailpointRegistry::Global().Arm("service.submit", c);

  CuboidSpec spec;
  spec.symbols = {"X"};
  spec.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""}};
  QueryResponse shed = service.Run(spec);
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.metrics().counter("queries_shed")->Value(), 1u);

  QueryResponse ok = service.Run(spec);
  EXPECT_TRUE(ok.status.ok()) << ok.status.ToString();
}

}  // namespace
}  // namespace solap
