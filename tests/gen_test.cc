// Tests for the workload generators: the paper's §5.2 synthetic model,
// the transit simulator, and the clickstream (Gazelle substitute).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "solap/engine/engine.h"
#include "solap/gen/clickstream.h"
#include "solap/gen/synthetic.h"
#include "solap/gen/transit.h"
#include "solap/gen/zipf.h"

namespace solap {
namespace {

TEST(ZipfTest, ProbabilitiesAreNormalizedAndSkewed) {
  ZipfDistribution z(10, 0.9);
  double total = 0;
  for (size_t i = 0; i < 10; ++i) total += z.ProbabilityOf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(z.ProbabilityOf(0), z.ProbabilityOf(1));
  EXPECT_GT(z.ProbabilityOf(1), z.ProbabilityOf(9));
}

TEST(ZipfTest, SamplingFollowsTheDistribution) {
  ZipfDistribution z(5, 1.0);
  std::mt19937_64 rng(1);
  std::map<size_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[z.Sample(rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[4]);
  double p0 = counts[0] / 20000.0;
  EXPECT_NEAR(p0, z.ProbabilityOf(0), 0.02);
}

TEST(SyntheticTest, ShapeMatchesParameters) {
  SyntheticParams p;
  p.num_sequences = 2000;
  p.num_symbols = 50;
  p.mean_length = 12;
  auto data = GenerateSynthetic(p);
  ASSERT_EQ(data.groups->groups().size(), 1u);  // single sequence group
  SequenceGroup& g = data.groups->groups()[0];
  EXPECT_EQ(g.num_sequences(), 2000u);
  double mean = static_cast<double>(g.total_events()) / g.num_sequences();
  EXPECT_NEAR(mean, 12.0, 0.5);
  EXPECT_EQ(data.groups->raw_dictionary().size(), 50u);
  // Every code within the symbol domain.
  auto b = data.groups->BindDimension(data.hierarchies.get(), data.Base());
  ASSERT_TRUE(b.ok());
  const std::vector<Code>& view = g.ViewFor(*b);
  for (Code c : view) EXPECT_LT(c, 50u);
}

TEST(SyntheticTest, FirstSymbolSkewFollowsZipf) {
  SyntheticParams p;
  p.num_sequences = 5000;
  auto data = GenerateSynthetic(p);
  SequenceGroup& g = data.groups->groups()[0];
  std::map<Code, int> first_counts;
  auto b = data.groups->BindDimension(data.hierarchies.get(), data.Base());
  ASSERT_TRUE(b.ok());
  const std::vector<Code>& view = g.ViewFor(*b);
  for (Sid s = 0; s < g.num_sequences(); ++s) {
    ++first_counts[g.Symbols(view, s)[0]];
  }
  // "e0" (rank 0) must dominate the tail by a wide margin.
  EXPECT_GT(first_counts[0], first_counts[40] * 3);
}

TEST(SyntheticTest, HierarchyHasThreeLevels) {
  SyntheticParams p;
  p.num_sequences = 10;
  auto data = GenerateSynthetic(p);
  ConceptHierarchy* h = data.hierarchies->Find(SyntheticData::kAttr);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->num_levels(), 3u);
  // All 100 symbols distribute over 20 groups and 5 supergroups.
  const Dictionary& dict = data.groups->raw_dictionary();
  std::set<Code> groups, supers;
  for (Code c = 0; c < dict.size(); ++c) {
    groups.insert(h->MapBaseCode(dict, 1, c));
    supers.insert(h->MapBaseCode(dict, 2, c));
  }
  EXPECT_EQ(groups.size(), 20u);
  EXPECT_EQ(supers.size(), 5u);
}

TEST(SyntheticTest, DeterministicBySeed) {
  SyntheticParams p;
  p.num_sequences = 100;
  auto a = GenerateSynthetic(p);
  auto b = GenerateSynthetic(p);
  SequenceGroup& ga = a.groups->groups()[0];
  SequenceGroup& gb = b.groups->groups()[0];
  ASSERT_EQ(ga.total_events(), gb.total_events());
  EXPECT_EQ(ga.offsets(), gb.offsets());
  auto batch1 = GenerateSyntheticBatch(p, 10, 99);
  auto batch2 = GenerateSyntheticBatch(p, 10, 99);
  EXPECT_EQ(batch1, batch2);
  EXPECT_EQ(p.Tag(), "I100.L20.t0.9.D100");
}

TEST(TransitTest, EventStreamShape) {
  TransitParams p;
  p.num_passengers = 50;
  p.num_days = 2;
  auto data = GenerateTransit(p);
  ASSERT_GT(data.table->num_rows(), 100u);  // >= 4 events/passenger/day
  // Schema sanity.
  EXPECT_EQ(data.table->schema().FieldIndex("card-id"), 1);
  EXPECT_NE(data.hierarchies->Find("location"), nullptr);
  EXPECT_NE(data.hierarchies->Find("card-id"), nullptr);
  // Actions are in/out pairs with negative fares on "out".
  int col_action = data.table->schema().FieldIndex("action");
  int col_amount = data.table->schema().FieldIndex("amount");
  for (RowId r = 0; r < 20; ++r) {
    std::string action = data.table->GetValue(r, col_action).str();
    double amount = data.table->DoubleAt(r, col_amount);
    if (action == "in") {
      EXPECT_EQ(amount, 0.0);
    } else {
      EXPECT_LT(amount, 0.0);
    }
  }
}

TEST(TransitTest, RoundTripsAreFrequent) {
  TransitParams p;
  p.num_passengers = 300;
  p.num_days = 1;
  auto data = GenerateTransit(p);
  SOlapEngine engine(data.table.get(), data.hierarchies.get());
  CuboidSpec spec;
  spec.seq.cluster_by = {{"card-id", "individual"}, {"time", "day"}};
  spec.seq.sequence_by = "time";
  spec.symbols = {"X", "Y", "Y", "X"};
  spec.dims = {PatternDim{"X", {"location", "station"}, {}, ""},
               PatternDim{"Y", {"location", "station"}, {}, ""}};
  auto r = engine.Execute(spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  double total = 0;
  for (const auto& [key, cell] : (*r)->cells()) total += cell.count;
  // round_trip_prob = 0.6 over 300 passengers: expect a healthy count.
  EXPECT_GT(total, 100);
}

TEST(ClickstreamTest, CrawlerSessionsCanBeFilteredLikeThePaper) {
  // §5.1 preprocessing: "filtered out click sequences that were generated
  // from web crawlers (i.e., user sessions with thousands of clicks)".
  // Crawler ids carry a "bot" prefix, so the WHERE clause can drop them;
  // without the filter the crawler sequences dominate the event count.
  ClickstreamParams p;
  p.num_sessions = 500;
  p.num_crawler_sessions = 3;
  auto data = GenerateClickstream(p);

  SOlapEngine engine(data.table.get(), data.hierarchies.get());
  CuboidSpec spec;
  spec.seq.cluster_by = {{"session-id", "session-id"}};
  spec.seq.sequence_by = "request-time";
  spec.symbols = {"X"};
  spec.dims = {PatternDim{"X", {"page", "page-category"}, {}, ""}};
  auto unfiltered = engine.Execute(spec);
  ASSERT_TRUE(unfiltered.ok());

  // Filter: keep only sessions whose id is lexicographically below "bot"
  // or above "bou" — generated user ids start with 's'.
  spec.seq.where = Expr::Ge(Expr::Col("session-id"),
                            Expr::Lit(Value::String("s")));
  auto filtered = engine.Execute(spec);
  ASSERT_TRUE(filtered.ok());

  // The crawlers sweep every category, so unfiltered counts exceed the
  // filtered ones; filtering recovers exactly the 500 user sessions.
  double unfiltered_mass = 0, filtered_mass = 0;
  for (const auto& [k, c] : (*unfiltered)->cells()) unfiltered_mass += c.count;
  for (const auto& [k, c] : (*filtered)->cells()) filtered_mass += c.count;
  EXPECT_GT(unfiltered_mass, filtered_mass);
  auto groups = engine.GroupsFor(spec.seq);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ((*groups)->total_sequences(), 500u);
}

TEST(ClickstreamTest, HierarchyAndHotPath) {
  ClickstreamParams p;
  p.num_sessions = 3000;
  auto data = GenerateClickstream(p);
  EXPECT_GT(data.table->num_rows(), 3000u);
  ConceptHierarchy* h = data.hierarchies->Find("page");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->num_levels(), 2u);

  // Category-level 2-step distribution: (Assortment, Legwear) must be the
  // hottest Assortment-outgoing pair, echoing the paper's 2,201 vs 150.
  SOlapEngine engine(data.table.get(), data.hierarchies.get());
  CuboidSpec spec;
  spec.seq.cluster_by = {{"session-id", "session-id"}};
  spec.seq.sequence_by = "request-time";
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {"page", "page-category"}, {}, ""},
               PatternDim{"Y", {"page", "page-category"}, {}, ""}};
  auto r = engine.Execute(spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  double legwear = 0, legcare = 0;
  for (const auto& [key, cell] : (*r)->cells()) {
    if ((*r)->LabelOf(0, key[0]) == "Assortment") {
      std::string y = (*r)->LabelOf(1, key[1]);
      if (y == "Legwear") legwear = cell.Value(AggKind::kCount);
      if (y == "Legcare") legcare = cell.Value(AggKind::kCount);
    }
  }
  EXPECT_GT(legwear, 0);
  EXPECT_GT(legwear, 5 * legcare);
}

}  // namespace
}  // namespace solap
