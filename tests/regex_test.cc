// Tests for regex pattern templates (the §3.2 extension): parsing, NFA
// matching semantics, engine integration and the query-language surface.
#include <gtest/gtest.h>

#include <set>

#include "paper_fixtures.h"
#include "solap/engine/engine.h"
#include "solap/parser/parser.h"
#include "solap/pattern/regex.h"

namespace solap {
namespace {

PatternDim Dim(const std::string& symbol) {
  return PatternDim{symbol, {"symbol", "symbol"}, {}, ""};
}

TEST(RegexParseTest, AcceptsTheDocumentedSyntax) {
  EXPECT_TRUE(RegexTemplate::Parse("X Y", {Dim("X"), Dim("Y")}).ok());
  EXPECT_TRUE(RegexTemplate::Parse("X ( . )* X", {Dim("X")}).ok());
  EXPECT_TRUE(RegexTemplate::Parse("X 'Pentagon'? Y | Y X",
                                   {Dim("X"), Dim("Y")})
                  .ok());
  EXPECT_TRUE(RegexTemplate::Parse("( X | Y )+", {Dim("X"), Dim("Y")}).ok());
}

TEST(RegexParseTest, RejectsBadPatterns) {
  // Undeclared symbol.
  EXPECT_FALSE(RegexTemplate::Parse("X Z", {Dim("X")}).ok());
  // Declared but unused dimension.
  EXPECT_FALSE(RegexTemplate::Parse("X", {Dim("X"), Dim("Y")}).ok());
  // No dimensions at all.
  EXPECT_FALSE(RegexTemplate::Parse("'a'", {}).ok());
  // Unbalanced parenthesis, dangling operator, unterminated literal.
  EXPECT_FALSE(RegexTemplate::Parse("( X", {Dim("X")}).ok());
  EXPECT_FALSE(RegexTemplate::Parse("X )", {Dim("X")}).ok());
  EXPECT_FALSE(RegexTemplate::Parse("X 'oops", {Dim("X")}).ok());
  EXPECT_FALSE(RegexTemplate::Parse("X #", {Dim("X")}).ok());
  // Mixed domains.
  PatternDim other{"Y", {"symbol", "district"}, {}, ""};
  EXPECT_FALSE(RegexTemplate::Parse("X Y", {Dim("X"), other}).ok());
}

class RegexMatchTest : public ::testing::Test {
 protected:
  // Sequence over a tiny alphabet; returns distinct matches as
  // (start, end, bindings...).
  std::set<std::vector<uint32_t>> Matches(const std::string& pattern,
                                          std::vector<PatternDim> dims,
                                          const std::vector<Code>& seq) {
    auto t = RegexTemplate::Parse(pattern, std::move(dims));
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    std::vector<Code> literals;
    for (const std::string& label : t->literal_labels()) {
      literals.push_back(label == "a" ? 0 : label == "b" ? 1 : 2);
    }
    BoundRegex bound(&*t, literals);
    std::set<std::vector<uint32_t>> out;
    bound.ForEachMatch(seq, [&](uint32_t s, uint32_t e, const Code* b) {
      std::vector<uint32_t> rec = {s, e};
      for (size_t d = 0; d < t->num_dims(); ++d) {
        rec.push_back(b[d]);
      }
      out.insert(rec);
      return true;
    });
    return out;
  }
};

TEST_F(RegexMatchTest, PlainConcatenationEqualsSubstring) {
  // "X Y" over <a,b,a>: (a,b) at 0 and (b,a) at 1.
  auto m = Matches("X Y", {Dim("X"), Dim("Y")}, {0, 1, 0});
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.count({0, 2, 0, 1}));
  EXPECT_TRUE(m.count({1, 3, 1, 0}));
}

TEST_F(RegexMatchTest, SymbolConsistencyAcrossOccurrences) {
  // "X X" over <a,a,b,b,a>: only equal adjacent pairs.
  auto m = Matches("X X", {Dim("X")}, {0, 0, 1, 1, 0});
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.count({0, 2, 0}));
  EXPECT_TRUE(m.count({2, 4, 1}));
}

TEST_F(RegexMatchTest, KleeneStarGapsAndReturn) {
  // "X ( . )* X": return to the same value with any gap.
  // <a,b,c,a>: spans (0,4) value a; also inner none for b/c.
  auto m = Matches("X ( . )* X", {Dim("X")}, {0, 1, 2, 0});
  ASSERT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.count({0, 4, 0}));
  // <a,a,a>: (0,2)a, (1,3)a, (0,3)a.
  auto m2 = Matches("X ( . )* X", {Dim("X")}, {0, 0, 0});
  EXPECT_EQ(m2.size(), 3u);
}

TEST_F(RegexMatchTest, PlusRequiresOneIteration) {
  // "X ( Y )+" with Y bound consistently: <a,b,b,c>:
  // (a, b) span (0,2); (a, b,b) span (0,3); (b,b) at (1,3); (b,c) etc.
  auto m = Matches("X ( Y )+", {Dim("X"), Dim("Y")}, {0, 1, 1, 2});
  // Enumerate: X=0: Y=1 spans (0,2) and (0,3); X=1,Y=1 span (1,3);
  // X=1,Y=2? position 2 is b then c: X=b(1) at pos 2, Y=c span (2,4);
  // X=1(pos1), Y=1(pos2) span (1,3); X=1(pos2),Y=2 span (2,4).
  EXPECT_TRUE(m.count({0, 2, 0, 1}));
  EXPECT_TRUE(m.count({0, 3, 0, 1}));
  EXPECT_TRUE(m.count({1, 3, 1, 1}));
  EXPECT_TRUE(m.count({2, 4, 1, 2}));
  // No zero-iteration match (X alone).
  for (const auto& rec : m) {
    EXPECT_GT(rec[1] - rec[0], 1u);
  }
}

TEST_F(RegexMatchTest, LiteralsAndOptional) {
  // "'a' X? 'b'" over <a,b,a,c,b>: (a,b) at 0 with X unbound; (a,c,b) at 2
  // with X=c.
  auto m = Matches("'a' X? 'b'", {Dim("X")}, {0, 1, 0, 2, 1});
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.count({0, 2, kNullCode}));
  EXPECT_TRUE(m.count({2, 5, 2}));
}

TEST_F(RegexMatchTest, AlternationLeavesBranchDimsUnbound) {
  // "X 'b' | 'b' Y" over <a,b,c>: left arm (a,b) X=a; right arm (b,c) Y=c.
  auto m = Matches("X 'b' | 'b' Y", {Dim("X"), Dim("Y")}, {0, 1, 2});
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.count({0, 2, 0, kNullCode}));
  EXPECT_TRUE(m.count({1, 3, kNullCode, 2}));
}

TEST_F(RegexMatchTest, EpsilonLoopsTerminate) {
  // Pathological nested quantifiers must not hang.
  auto m = Matches("( X? )* 'b'", {Dim("X")}, {0, 1});
  EXPECT_FALSE(m.empty());
}

class RegexEngineTest : public ::testing::Test {
 protected:
  RegexEngineTest()
      : set_(testing::Fig8RawGroups()),
        reg_(testing::Fig8Hierarchies()),
        engine_(set_, reg_.get()) {}

  CuboidSpec Spec(const std::string& pattern,
                  std::vector<std::string> symbols) {
    CuboidSpec s;
    s.regex = pattern;
    for (const std::string& sym : symbols) {
      s.dims.push_back(PatternDim{sym, {"symbol", "symbol"}, {}, ""});
    }
    return s;
  }

  double CellByLabels(const SCuboid& c,
                      const std::vector<std::string>& labels) {
    for (const auto& [key, cell] : c.cells()) {
      bool ok = key.size() == labels.size();
      for (size_t d = 0; ok && d < key.size(); ++d) {
        ok = c.LabelOf(d, key[d]) == labels[d];
      }
      if (ok) return cell.Value(c.agg());
    }
    return -1;
  }

  std::shared_ptr<SequenceGroupSet> set_;
  std::shared_ptr<HierarchyRegistry> reg_;
  SOlapEngine engine_;
};

TEST_F(RegexEngineTest, SimpleRegexAgreesWithSubstringTemplate) {
  auto regex = engine_.Execute(Spec("X Y", {"X", "Y"}));
  ASSERT_TRUE(regex.ok()) << regex.status().ToString();
  CuboidSpec plain;
  plain.symbols = {"X", "Y"};
  plain.dims = {PatternDim{"X", {"symbol", "symbol"}, {}, ""},
                PatternDim{"Y", {"symbol", "symbol"}, {}, ""}};
  auto tmpl = engine_.Execute(plain);
  ASSERT_TRUE(tmpl.ok());
  EXPECT_EQ((*regex)->num_cells(), (*tmpl)->num_cells());
  for (const auto& [key, cell] : (*tmpl)->cells()) {
    EXPECT_EQ((*regex)->CellAt(key).count, cell.count);
  }
}

TEST_F(RegexEngineTest, GappedRoundTrips) {
  // "X ( . )* X": who returns to a previously visited station?
  // s1 = <G,P,P,W,W,P>: P and W return. s2 = <P,W,W,P>: P, W.
  // s4 = <W,C,D,W>: W. s3 = <C,P>: none.
  auto r = engine_.Execute(Spec("X ( . )* X", {"X"}));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(CellByLabels(**r, {"Pentagon"}), 2);  // s1, s2
  EXPECT_EQ(CellByLabels(**r, {"Wheaton"}), 3);   // s1, s2, s4
  EXPECT_EQ(CellByLabels(**r, {"Clarendon"}), -1);
}

TEST_F(RegexEngineTest, RestrictionsApply) {
  // all-matched-go counts every distinct occurrence, matched-go one per
  // instantiation per sequence.
  CuboidSpec spec = Spec("X ( . )* X", {"X"});
  spec.restriction = CellRestriction::kAllMatchedGo;
  auto all = engine_.Execute(spec);
  ASSERT_TRUE(all.ok());
  // s1 = <G,P,P,W,W,P>: P spans (1,3), (1,6), (2,6); W spans (3,5) -> P:3.
  EXPECT_EQ(CellByLabels(**all, {"Pentagon"}), 3 + 1);  // s1:3 + s2:1
}

TEST_F(RegexEngineTest, SliceAndIcebergApply) {
  CuboidSpec spec = Spec("X ( . )* X", {"X"});
  spec.dims[0].fixed_labels = {"Wheaton"};
  auto r = engine_.Execute(spec);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_cells(), 1u);
  EXPECT_EQ(CellByLabels(**r, {"Wheaton"}), 3);

  CuboidSpec ice = Spec("X ( . )* X", {"X"});
  ice.iceberg_min_count = 3;
  auto ri = engine_.Execute(ice);
  ASSERT_TRUE(ri.ok());
  EXPECT_EQ((*ri)->num_cells(), 1u);  // only Wheaton reaches 3
}

TEST_F(RegexEngineTest, AutoStrategyRunsRegexDirectly) {
  // kAuto must not route a regex spec through the optimizer (whose cost
  // model is template-based); the regex scanner runs regardless.
  auto r = engine_.Execute(Spec("X ( . )* X", {"X"}), ExecStrategy::kAuto);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(CellByLabels(**r, {"Wheaton"}), 3);
}

TEST_F(RegexEngineTest, PredicateIsRejected) {
  CuboidSpec spec = Spec("X Y", {"X", "Y"});
  spec.placeholders = {"x1", "y1"};
  spec.predicate = Expr::Eq(Expr::PCol("x1", "action"),
                            Expr::Lit(Value::String("in")));
  auto r = engine_.Execute(spec);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotImplemented);
}

TEST(RegexParserTest, PatternKeywordEndToEnd) {
  auto table = testing::Fig8Table();
  auto reg = testing::Fig8Hierarchies();
  SOlapEngine engine(table.get(), reg.get());
  auto spec = ParseQuery(R"(
    SELECT COUNT(*) FROM Event
    CLUSTER BY card-id AT card-id
    SEQUENCE BY time ASCENDING
    CUBOID BY PATTERN "X ( . )* 'Pentagon' | X 'Wheaton'"
      WITH X AS location AT station
      LEFT-MAXIMALITY
  )");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_TRUE(spec->is_regex());
  auto r = engine.Execute(*spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT((*r)->num_cells(), 0u);

  // Placeholders with PATTERN are a parse error.
  EXPECT_FALSE(ParseQuery(R"(
    SELECT COUNT(*) FROM Event
    CLUSTER BY card-id AT card-id
    SEQUENCE BY time
    CUBOID BY PATTERN "X" WITH X AS location AT station
      LEFT-MAXIMALITY (x1) WITH x1.action = "in"
  )")
                   .ok());
}

}  // namespace
}  // namespace solap
