// Shared test fixtures reproducing the paper's worked examples:
//  - the Figure 8 sequence group (sids s1..s4, station values, alternating
//    in/out actions);
//  - the station -> district hierarchy used by the §4.2.2 P-ROLL-UP
//    discussion (district D10 = {Pentagon, Clarendon});
//  - both a table-backed variant (supports matching predicates) and a raw
//    variant (symbol streams only).
#ifndef SOLAP_TESTS_PAPER_FIXTURES_H_
#define SOLAP_TESTS_PAPER_FIXTURES_H_

#include <memory>
#include <string>
#include <vector>

#include "solap/gen/transit.h"
#include "solap/hierarchy/concept_hierarchy.h"
#include "solap/seq/sequence_group.h"
#include "solap/storage/event_table.h"

namespace solap {
namespace testing {

/// Station streams of the four Figure 8 sequences.
inline const std::vector<std::vector<std::string>>& Fig8Sequences() {
  static const std::vector<std::vector<std::string>> kSeqs = {
      {"Glenmont", "Pentagon", "Pentagon", "Wheaton", "Wheaton", "Pentagon"},
      {"Pentagon", "Wheaton", "Wheaton", "Pentagon"},
      {"Clarendon", "Pentagon"},
      {"Wheaton", "Clarendon", "Deanwood", "Wheaton"},
  };
  return kSeqs;
}

/// station -> district hierarchy: D10 = {Pentagon, Clarendon} (paper
/// §4.2.2), D20 = {Wheaton, Glenmont}, D30 = {Deanwood}.
inline std::shared_ptr<HierarchyRegistry> Fig8Hierarchies() {
  auto reg = std::make_shared<HierarchyRegistry>();
  auto h = std::make_shared<ConceptHierarchy>(
      std::vector<std::string>{"station", "district"});
  (void)h->SetParent(0, "Pentagon", "D10");
  (void)h->SetParent(0, "Clarendon", "D10");
  (void)h->SetParent(0, "Wheaton", "D20");
  (void)h->SetParent(0, "Glenmont", "D20");
  (void)h->SetParent(0, "Deanwood", "D30");
  reg->Register("location", h);
  // The raw fixture exposes the same hierarchy under the raw attr name.
  reg->Register("symbol", h);
  return reg;
}

/// Raw sequence group set over attribute "symbol" holding the Fig. 8
/// sequences (single group, sids 0..3 = s1..s4).
inline std::shared_ptr<SequenceGroupSet> Fig8RawGroups() {
  auto set = std::make_shared<SequenceGroupSet>("symbol");
  SequenceGroup& g = set->GroupFor({});
  for (const auto& seq : Fig8Sequences()) {
    std::vector<Code> codes;
    for (const std::string& s : seq) {
      codes.push_back(set->raw_dictionary().GetOrAdd(s));
    }
    g.AddSequence(codes);
  }
  return set;
}

/// Table-backed Fig. 8 data: one passenger per sequence, events ordered by
/// time, action alternating in/out ("events at odd positions have action
/// 'in' whereas events at even positions have action 'out'").
inline std::shared_ptr<EventTable> Fig8Table() {
  Schema schema({
      {"time", ValueType::kTimestamp, FieldRole::kDimension},
      {"card-id", ValueType::kString, FieldRole::kDimension},
      {"location", ValueType::kString, FieldRole::kDimension},
      {"action", ValueType::kString, FieldRole::kDimension},
      {"amount", ValueType::kDouble, FieldRole::kMeasure},
  });
  auto table = std::make_shared<EventTable>(std::move(schema));
  const char* cards[] = {"688", "23456", "1012", "77"};
  const auto& seqs = Fig8Sequences();
  int64_t t = MakeTimestamp(2007, 12, 25, 8, 0, 0);
  for (size_t i = 0; i < seqs.size(); ++i) {
    for (size_t j = 0; j < seqs[i].size(); ++j) {
      (void)table->AppendRow({
          Value::Timestamp(t),
          Value::String(cards[i]),
          Value::String(seqs[i][j]),
          Value::String(j % 2 == 0 ? "in" : "out"),
          Value::Double(j % 2 == 0 ? 0.0 : -2.0),
      });
      t += 60;
    }
  }
  return table;
}

}  // namespace testing
}  // namespace solap

#endif  // SOLAP_TESTS_PAPER_FIXTURES_H_
