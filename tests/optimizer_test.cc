// Tests for the cost-based strategy optimizer (engine/optimizer.h): the
// choices it makes must track the paper's observed trade-offs — CB for
// cold unselective queries, II whenever cached indices (exact, finer,
// coarser, or prefix) can be exploited.
#include <gtest/gtest.h>

#include "paper_fixtures.h"
#include "solap/engine/engine.h"
#include "solap/engine/operations.h"
#include "solap/engine/optimizer.h"
#include "solap/gen/synthetic.h"

namespace solap {
namespace {

SyntheticData SmallData() {
  SyntheticParams p;
  p.num_sequences = 500;
  p.num_symbols = 15;
  p.mean_length = 8;
  return GenerateSynthetic(p);
}

CuboidSpec XYSpec(const std::string& x_level = "symbol",
                  const std::string& y_level = "symbol") {
  CuboidSpec spec;
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {SyntheticData::kAttr, x_level}, {}, ""},
               PatternDim{"Y", {SyntheticData::kAttr, y_level}, {}, ""}};
  return spec;
}

TEST(OptimizerTest, ColdCountOnlyQueryTiesTowardInvertedIndex) {
  // A cold COUNT query with no predicate: both strategies scan once, but
  // II leaves a reusable index behind — the tie resolves toward II.
  SyntheticData data = SmallData();
  SOlapEngine engine(data.groups, data.hierarchies.get());
  StrategyOptimizer opt(&engine);
  auto choice = opt.Choose(XYSpec());
  ASSERT_TRUE(choice.ok()) << choice.status().ToString();
  EXPECT_EQ(choice->strategy, ExecStrategy::kInvertedIndex);
  EXPECT_DOUBLE_EQ(choice->ii_cost, choice->cb_cost);
}

TEST(OptimizerTest, CachedExactIndexPrefersInvertedIndex) {
  SyntheticData data = SmallData();
  SOlapEngine engine(data.groups, data.hierarchies.get());
  ASSERT_TRUE(engine.Execute(XYSpec(), ExecStrategy::kInvertedIndex).ok());
  StrategyOptimizer opt(&engine);
  auto choice = opt.Choose(XYSpec());
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->strategy, ExecStrategy::kInvertedIndex);
  EXPECT_EQ(choice->ii_cost, 0.0);
  EXPECT_NE(choice->reason.find("exact"), std::string::npos);
}

TEST(OptimizerTest, RollUpAfterFineIndexPrefersMerge) {
  SyntheticData data = SmallData();
  SOlapEngine engine(data.groups, data.hierarchies.get());
  ASSERT_TRUE(engine.Execute(XYSpec(), ExecStrategy::kInvertedIndex).ok());
  StrategyOptimizer opt(&engine);
  auto choice = opt.Choose(XYSpec("symbol", "group"));
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->strategy, ExecStrategy::kInvertedIndex);
  EXPECT_NE(choice->reason.find("P-ROLL-UP"), std::string::npos);
}

TEST(OptimizerTest, UnrestrictedDrillDownFallsBackToCounterBased) {
  // Refinement rescans every sequence in the coarse lists at a higher
  // per-sequence cost than CB (the 1.5 calibration factor): with nothing
  // sliced, the optimizer keeps CB — matching the paper's QB2 observation
  // that II loses its edge on non-selective drill-downs.
  SyntheticData data = SmallData();
  SOlapEngine engine(data.groups, data.hierarchies.get());
  ASSERT_TRUE(engine.Execute(XYSpec("symbol", "group"),
                             ExecStrategy::kInvertedIndex)
                  .ok());
  StrategyOptimizer opt(&engine);
  auto choice = opt.Choose(XYSpec());
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->strategy, ExecStrategy::kCounterBased);
  EXPECT_NE(choice->reason.find("P-DRILL-DOWN"), std::string::npos);
}

TEST(OptimizerTest, SlicedAppendPrefersPrefixExtension) {
  // The paper's iterative pattern: slice the hottest cell, then APPEND.
  // The sliced prefix is selective, so scan-extension from the cached
  // index beats a fresh CB pass.
  SyntheticData data = SmallData();
  SOlapEngine engine(data.groups, data.hierarchies.get());
  auto first = engine.Execute(XYSpec(), ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(first.ok());
  auto sliced = ops::SliceToCell(XYSpec(), **first, (*first)->ArgMaxCell());
  ASSERT_TRUE(sliced.ok());
  auto appended =
      ops::Append(*sliced, "Z", {SyntheticData::kAttr, "symbol"});
  ASSERT_TRUE(appended.ok());
  StrategyOptimizer opt(&engine);
  auto choice = opt.Choose(*appended);
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->strategy, ExecStrategy::kInvertedIndex);
  EXPECT_NE(choice->reason.find("prefix"), std::string::npos);
  EXPECT_LT(choice->ii_cost, choice->cb_cost);
}

TEST(OptimizerTest, PredicateForcesCountScanIntoTheEstimate) {
  auto table = testing::Fig8Table();
  auto reg = testing::Fig8Hierarchies();
  SOlapEngine engine(table.get(), reg.get());
  CuboidSpec spec;
  spec.seq.cluster_by = {{"card-id", "card-id"}};
  spec.seq.sequence_by = "time";
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {"location", "station"}, {}, ""},
               PatternDim{"Y", {"location", "station"}, {}, ""}};
  spec.placeholders = {"x1", "y1"};
  spec.predicate = Expr::Eq(Expr::PCol("x1", "action"),
                            Expr::Lit(Value::String("in")));
  StrategyOptimizer opt(&engine);
  auto cold = opt.Choose(spec);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  // Cold + predicate: II pays build AND counting scans.
  EXPECT_GT(cold->ii_cost, cold->cb_cost);
  EXPECT_EQ(cold->strategy, ExecStrategy::kCounterBased);
}

TEST(OptimizerTest, AutoStrategyExecutesCorrectly) {
  SyntheticData data = SmallData();
  SOlapEngine engine(data.groups, data.hierarchies.get());
  // Whatever the optimizer picks, the result must match an explicit run.
  auto auto1 = engine.Execute(XYSpec(), ExecStrategy::kAuto);
  ASSERT_TRUE(auto1.ok()) << auto1.status().ToString();
  SOlapEngine check(data.groups, data.hierarchies.get());
  auto expect = check.Execute(XYSpec(), ExecStrategy::kCounterBased);
  ASSERT_TRUE(expect.ok());
  EXPECT_EQ((*auto1)->num_cells(), (*expect)->num_cells());
  for (const auto& [key, cell] : (*expect)->cells()) {
    EXPECT_EQ((*auto1)->CellAt(key).count, cell.count);
  }
  // Warm the index cache, then auto must pick II and still agree.
  ASSERT_TRUE(engine.Execute(XYSpec(), ExecStrategy::kInvertedIndex).ok());
  auto rolled = ops::PRollUp(XYSpec(), "Y", *data.hierarchies);
  ASSERT_TRUE(rolled.ok());
  auto auto2 = engine.Execute(*rolled, ExecStrategy::kAuto);
  ASSERT_TRUE(auto2.ok());
  auto expect2 = check.Execute(*rolled, ExecStrategy::kCounterBased);
  ASSERT_TRUE(expect2.ok());
  EXPECT_EQ((*auto2)->num_cells(), (*expect2)->num_cells());
}

TEST(OptimizerTest, ReportsCostsForAllSelectedGroups) {
  SyntheticData data = SmallData();
  SOlapEngine engine(data.groups, data.hierarchies.get());
  StrategyOptimizer opt(&engine);
  auto choice = opt.Choose(XYSpec());
  ASSERT_TRUE(choice.ok());
  EXPECT_DOUBLE_EQ(choice->cb_cost, 500.0);  // one scan per sequence
  EXPECT_FALSE(choice->reason.empty());
}

}  // namespace
}  // namespace solap
