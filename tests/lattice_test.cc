// Tests for the S-cube lattice partial order and navigation (paper §3.4).
#include <gtest/gtest.h>

#include "paper_fixtures.h"
#include "solap/cube/lattice.h"
#include "solap/engine/engine.h"
#include "solap/engine/operations.h"

namespace solap {
namespace {

CuboidSpec Spec(std::vector<std::string> symbols,
                const std::string& level = "station") {
  CuboidSpec s;
  s.seq.cluster_by = {{"card-id", "card-id"}};
  s.seq.sequence_by = "time";
  s.symbols = symbols;
  std::vector<std::string> seen;
  for (const std::string& sym : symbols) {
    if (std::find(seen.begin(), seen.end(), sym) != seen.end()) continue;
    s.dims.push_back(PatternDim{sym, {"location", level}, {}, ""});
    seen.push_back(sym);
  }
  return s;
}

class LatticeTest : public ::testing::Test {
 protected:
  LatticeTest() : reg_(testing::Fig8Hierarchies()) {}
  std::shared_ptr<HierarchyRegistry> reg_;
};

TEST_F(LatticeTest, EqualSpecsCompareEqual) {
  CuboidSpec a = Spec({"X", "Y"});
  EXPECT_EQ(CompareSpecs(a, a, reg_.get()), SpecOrder::kEqual);
}

TEST_F(LatticeTest, WindowOfLongerTemplateIsCoarser) {
  // (X, Y) is the DE-TAIL of (X, Y, Z): a window at offset 0.
  CuboidSpec xy = Spec({"X", "Y"});
  CuboidSpec xyz = Spec({"X", "Y", "Z"});
  EXPECT_EQ(CompareSpecs(xy, xyz, reg_.get()), SpecOrder::kCoarser);
  EXPECT_EQ(CompareSpecs(xyz, xy, reg_.get()), SpecOrder::kFiner);
  // Also a middle window (reachable by DE-HEAD + DE-TAIL).
  CuboidSpec y = Spec({"Y"});
  EXPECT_EQ(CompareSpecs(y, xyz, reg_.get()), SpecOrder::kCoarser);
}

TEST_F(LatticeTest, EqualityStructureMustMatch) {
  // (X, X) is NOT a window of (X, Y, Z) — no adjacent equal pair there —
  // but it IS one of (X, Y, Y, X) (the middle (Y, Y)).
  CuboidSpec xx = Spec({"X", "X"});
  CuboidSpec xyz = Spec({"X", "Y", "Z"});
  CuboidSpec xyyx = Spec({"X", "Y", "Y", "X"});
  EXPECT_EQ(CompareSpecs(xx, xyz, reg_.get()), SpecOrder::kIncomparable);
  EXPECT_EQ(CompareSpecs(xx, xyyx, reg_.get()), SpecOrder::kCoarser);
  // Conversely a free pair is NOT a window of (X, X): the window's two
  // positions are forced equal, the pair's are not.
  CuboidSpec xy = Spec({"X", "Y"});
  EXPECT_EQ(CompareSpecs(xy, xx, reg_.get()), SpecOrder::kIncomparable);
}

TEST_F(LatticeTest, HigherAbstractionLevelIsCoarser) {
  CuboidSpec fine = Spec({"X", "Y"}, "station");
  CuboidSpec coarse = Spec({"X", "Y"}, "district");
  EXPECT_EQ(CompareSpecs(coarse, fine, reg_.get()), SpecOrder::kCoarser);
  EXPECT_EQ(CompareSpecs(fine, coarse, reg_.get()), SpecOrder::kFiner);
  // Mixed: one dim finer, one coarser -> incomparable.
  CuboidSpec mixed = Spec({"X", "Y"});
  mixed.dims[0].ref.level = "district";
  CuboidSpec mixed2 = Spec({"X", "Y"});
  mixed2.dims[1].ref.level = "district";
  EXPECT_EQ(CompareSpecs(mixed, mixed2, reg_.get()),
            SpecOrder::kIncomparable);
}

TEST_F(LatticeTest, GlobalDimensionsParticipate) {
  CuboidSpec with_global = Spec({"X", "Y"});
  with_global.seq.group_by = {{"time", "day"}};
  CuboidSpec without = Spec({"X", "Y"});
  // Fewer global dimensions = coarser.
  EXPECT_EQ(CompareSpecs(without, with_global, reg_.get()),
            SpecOrder::kCoarser);
  CuboidSpec weekly = Spec({"X", "Y"});
  weekly.seq.group_by = {{"time", "week"}};
  EXPECT_EQ(CompareSpecs(weekly, with_global, reg_.get()),
            SpecOrder::kCoarser);
}

TEST_F(LatticeTest, DifferentFamiliesAreIncomparable) {
  CuboidSpec a = Spec({"X", "Y"});
  CuboidSpec all = a;
  all.restriction = CellRestriction::kAllMatchedGo;
  EXPECT_EQ(CompareSpecs(a, all, reg_.get()), SpecOrder::kIncomparable);
  CuboidSpec sliced = *ops::SlicePattern(a, "X", {"Pentagon"});
  EXPECT_EQ(CompareSpecs(a, sliced, reg_.get()), SpecOrder::kIncomparable);
  CuboidSpec subseq = a;
  subseq.kind = PatternKind::kSubsequence;
  EXPECT_EQ(CompareSpecs(a, subseq, reg_.get()), SpecOrder::kIncomparable);
}

TEST_F(LatticeTest, CoarserNeighborsEnumeratesAllOneStepMoves) {
  CuboidSpec spec = Spec({"X", "Y", "Y"});
  spec.seq.group_by = {{"time", "day"}};
  auto parents = CoarserNeighbors(spec, *reg_);
  ASSERT_TRUE(parents.ok()) << parents.status().ToString();
  // DE-HEAD, DE-TAIL, P-ROLL-UP X, P-ROLL-UP Y, roll-up time -> 5.
  EXPECT_EQ(parents->size(), 5u);
  // Every parent must actually be coarser (or equal for degenerate moves).
  for (const CuboidSpec& p : *parents) {
    SpecOrder order = CompareSpecs(p, spec, reg_.get());
    EXPECT_TRUE(order == SpecOrder::kCoarser || order == SpecOrder::kEqual)
        << SpecOrderName(order) << " for " << p.CanonicalString();
  }
}

TEST_F(LatticeTest, FinerNeighborsInvertRollUps) {
  CuboidSpec spec = Spec({"X", "Y"}, "district");
  spec.seq.group_by = {{"time", "week"}};
  auto children = FinerNeighbors(spec, *reg_);
  ASSERT_TRUE(children.ok());
  // P-DRILL-DOWN X, P-DRILL-DOWN Y, and the calendar drill week -> day.
  EXPECT_EQ(children->size(), 3u);
  for (const CuboidSpec& c : *children) {
    EXPECT_EQ(CompareSpecs(c, spec, reg_.get()), SpecOrder::kFiner);
  }
}

TEST_F(LatticeTest, SingleSymbolHasNoDeHeadDeTail) {
  CuboidSpec spec = Spec({"X"});
  auto parents = CoarserNeighbors(spec, *reg_);
  ASSERT_TRUE(parents.ok());
  // Only the P-ROLL-UP of X.
  EXPECT_EQ(parents->size(), 1u);
}

TEST_F(LatticeTest, NavigationSpecsExecute) {
  auto table = testing::Fig8Table();
  SOlapEngine engine(table.get(), reg_.get());
  CuboidSpec spec = Spec({"X", "Y"});
  auto parents = CoarserNeighbors(spec, *reg_);
  ASSERT_TRUE(parents.ok());
  for (const CuboidSpec& p : *parents) {
    auto r = engine.Execute(p);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << " for "
                        << p.CanonicalString();
  }
}

}  // namespace
}  // namespace solap
