// Unit tests of the service layer: thread pool, stop tokens, metrics,
// session manager (LRU + TTL with an injected clock), and the query
// service's admission control, deadlines, cancellation, single-flight
// dedup and shell integration.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "solap/common/metrics.h"
#include "solap/common/stop.h"
#include "solap/gen/synthetic.h"
#include "solap/service/query_service.h"
#include "solap/service/session.h"
#include "solap/common/thread_pool.h"
#include "solap/tools/shell.h"

namespace solap {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4u);
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(pool.Submit([&] { ran.fetch_add(1); }));
    }
  }  // destructor drains
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, RejectsAfterShutdownButDrainsQueued) {
  std::atomic<int> ran{0};
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  ASSERT_TRUE(pool.Submit([&] {
    while (!release.load()) std::this_thread::yield();
    ran.fetch_add(1);
  }));
  ASSERT_TRUE(pool.Submit([&] { ran.fetch_add(1); }));  // queued behind
  release.store(true);
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 2);  // graceful: accepted work is never dropped
  EXPECT_FALSE(pool.Submit([&] { ran.fetch_add(1); }));
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.Submit([&] { ran.fetch_add(1); }));
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 1);
}

// ----------------------------------------------------------------- StopToken

TEST(StopTest, DefaultTokenNeverTrips) {
  StopToken token;
  EXPECT_FALSE(token.stop_requested());
  EXPECT_TRUE(token.Check("work").ok());
  EXPECT_TRUE(CheckStop(nullptr, "work").ok());
}

TEST(StopTest, RequestStopTripsAsCancelled) {
  StopSource source;
  StopToken token = source.token();
  EXPECT_TRUE(token.Check("work").ok());
  source.RequestStop();
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.Check("work").code(), StatusCode::kCancelled);
}

TEST(StopTest, PastDeadlineTripsAsDeadlineExceeded) {
  StopSource source;
  source.SetDeadline(steady_clock::now() - milliseconds(1));
  StopToken token = source.token();
  EXPECT_TRUE(token.deadline_expired());
  EXPECT_EQ(token.Check("work").code(), StatusCode::kDeadlineExceeded);
}

TEST(StopTest, NonPositiveTimeoutMeansNoDeadline) {
  StopSource source;
  source.SetTimeout(milliseconds(0));
  EXPECT_FALSE(source.token().deadline_expired());
}

// ------------------------------------------------------------------- Metrics

TEST(MetricsTest, CountersAndHistograms) {
  MetricsRegistry reg;
  Counter* c = reg.counter("queries");
  c->Inc();
  c->Inc(4);
  EXPECT_EQ(c->Value(), 5u);
  EXPECT_EQ(reg.counter("queries"), c);  // stable get-or-create

  Histogram* h = reg.histogram("latency_ms");
  h->ObserveMs(1.0);
  h->ObserveMs(2.0);
  h->ObserveMs(100.0);
  Histogram::Snapshot s = h->TakeSnapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_NEAR(s.sum_ms, 103.0, 1.0);
  EXPECT_GT(s.p99_ms, s.p50_ms * 0.99);

  std::string text = reg.ToString();
  EXPECT_NE(text.find("queries"), std::string::npos);
  EXPECT_NE(text.find("latency_ms"), std::string::npos);
}

// ------------------------------------------------------------ SessionManager

CuboidSpec XYSpec() {
  CuboidSpec spec;
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""},
               PatternDim{"Y", {SyntheticData::kAttr, "symbol"}, {}, ""}};
  return spec;
}

class SessionTest : public ::testing::Test {
 protected:
  SessionTest() : data_(GenerateSynthetic(SmallParams())) {}

  static SyntheticParams SmallParams() {
    SyntheticParams p;
    p.num_sequences = 200;
    p.num_symbols = 20;
    return p;
  }

  SyntheticData data_;
};

TEST_F(SessionTest, OpsTransformTheCurrentSpec) {
  SessionManager mgr(data_.hierarchies.get());
  SessionId id = mgr.Open(XYSpec());

  SessionOp append{"append", "Z", {SyntheticData::kAttr, "symbol"}, "", {}};
  auto appended = mgr.Apply(id, append);
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  EXPECT_EQ(appended->symbols.size(), 3u);

  auto detailed = mgr.Apply(id, SessionOp{"detail", "", {}, "", {}});
  ASSERT_TRUE(detailed.ok());
  EXPECT_EQ(detailed->symbols.size(), 2u);

  auto rolled = mgr.Apply(id, SessionOp{"prollup", "X", {}, "", {}});
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();
  EXPECT_EQ(rolled->dims[0].ref.level, SyntheticData::kLevelGroup);

  auto current = mgr.Current(id);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current->CanonicalString(), rolled->CanonicalString());
}

TEST_F(SessionTest, FailedOpLeavesSessionIntact) {
  SessionManager mgr(data_.hierarchies.get());
  SessionId id = mgr.Open(XYSpec());
  EXPECT_FALSE(mgr.Apply(id, SessionOp{"frobnicate", "", {}, "", {}}).ok());
  auto current = mgr.Current(id);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current->CanonicalString(), XYSpec().CanonicalString());
}

TEST_F(SessionTest, CloseAndUnknownIdsReportNotFound) {
  SessionManager mgr(data_.hierarchies.get());
  SessionId id = mgr.Open(XYSpec());
  mgr.Close(id);
  mgr.Close(id);  // idempotent
  EXPECT_EQ(mgr.Current(id).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(mgr.NumSessions(), 0u);
}

TEST_F(SessionTest, LruEvictionAtCapacity) {
  SessionManagerOptions opts;
  opts.max_sessions = 2;
  SessionManager mgr(data_.hierarchies.get(), opts);
  SessionId a = mgr.Open(XYSpec());
  SessionId b = mgr.Open(XYSpec());
  ASSERT_TRUE(mgr.Current(a).ok());  // refresh a; b is now LRU
  SessionId c = mgr.Open(XYSpec());
  EXPECT_EQ(mgr.NumSessions(), 2u);
  EXPECT_TRUE(mgr.Current(a).ok());
  EXPECT_EQ(mgr.Current(b).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(mgr.Current(c).ok());
}

TEST_F(SessionTest, TtlExpiryWithInjectedClock) {
  auto now = std::make_shared<steady_clock::time_point>(steady_clock::now());
  SessionManagerOptions opts;
  opts.ttl = milliseconds(1000);
  SessionManager mgr(data_.hierarchies.get(), opts, [now] { return *now; });

  SessionId stale = mgr.Open(XYSpec());
  *now += milliseconds(600);
  SessionId fresh = mgr.Open(XYSpec());
  *now += milliseconds(600);  // stale idle 1200ms, fresh idle 600ms
  EXPECT_EQ(mgr.Current(stale).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(mgr.Current(fresh).ok());
  EXPECT_EQ(mgr.NumSessions(), 1u);
}

// -------------------------------------------------------------- QueryService

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() : data_(GenerateSynthetic(Params())) {}

  static SyntheticParams Params() {
    SyntheticParams p;
    p.num_sequences = 20000;  // CB scan takes several ms: room to interrupt
    p.num_symbols = 50;
    return p;
  }

  SubmitOptions Cb() {
    SubmitOptions o;
    o.strategy = ExecStrategy::kCounterBased;
    return o;
  }

  SyntheticData data_;
};

TEST_F(ServiceTest, RunMatchesDirectEngineExecution) {
  SOlapEngine direct(data_.groups, data_.hierarchies.get());
  auto expected = direct.Execute(XYSpec(), ExecStrategy::kCounterBased);
  ASSERT_TRUE(expected.ok());

  SOlapEngine engine(data_.groups, data_.hierarchies.get());
  QueryService service(&engine);
  QueryResponse resp = service.Run(XYSpec(), Cb());
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  ASSERT_NE(resp.cuboid, nullptr);
  ASSERT_EQ(resp.cuboid->num_cells(), (*expected)->num_cells());
  for (const auto& [key, cell] : (*expected)->cells()) {
    EXPECT_EQ(resp.cuboid->CellAt(key).count, cell.count);
  }
  EXPECT_GT(resp.stats.sequences_scanned, 0u);
  EXPECT_EQ(service.metrics().counter("queries_ok")->Value(), 1u);
}

TEST_F(ServiceTest, RepeatedQueryHitsTheRepository) {
  SOlapEngine engine(data_.groups, data_.hierarchies.get());
  QueryService service(&engine);
  ASSERT_TRUE(service.Run(XYSpec(), Cb()).status.ok());
  QueryResponse again = service.Run(XYSpec(), Cb());
  ASSERT_TRUE(again.status.ok());
  EXPECT_EQ(again.stats.repository_hits, 1u);
  EXPECT_EQ(service.metrics().counter("repository_hits")->Value(), 1u);
}

TEST_F(ServiceTest, QueueFullShedsWithResourceExhausted) {
  SOlapEngine engine(data_.groups, data_.hierarchies.get());
  ServiceOptions opts;
  opts.num_threads = 1;
  opts.max_queue_depth = 1;
  QueryService service(&engine, opts);

  // The first query occupies the only admission slot for several ms.
  QueryService::Ticket blocker = service.Submit(XYSpec(), Cb());
  QueryResponse shed = service.Run(XYSpec(), Cb());
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.metrics().counter("queries_shed")->Value(), 1u);
  EXPECT_TRUE(blocker.response.get().status.ok());
}

TEST_F(ServiceTest, DeadlineInterruptsAScanInProgress) {
  SOlapEngine engine(data_.groups, data_.hierarchies.get());
  ServiceOptions opts;
  opts.num_threads = 1;
  QueryService service(&engine, opts);

  SubmitOptions timed = Cb();
  timed.timeout = milliseconds(1);  // far below the multi-ms CB scan
  QueryResponse resp = service.Run(XYSpec(), timed);
  EXPECT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(resp.cuboid, nullptr);
  EXPECT_EQ(service.metrics().counter("queries_timeout")->Value(), 1u);
}

TEST_F(ServiceTest, QueuedQueryCanBeCancelled) {
  SOlapEngine engine(data_.groups, data_.hierarchies.get());
  ServiceOptions opts;
  opts.num_threads = 1;
  QueryService service(&engine, opts);

  QueryService::Ticket blocker = service.Submit(XYSpec(), Cb());
  QueryService::Ticket victim = service.Submit(XYSpec(), Cb());
  victim.canceller->RequestStop();
  QueryResponse resp = victim.response.get();
  EXPECT_EQ(resp.status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(blocker.response.get().status.ok());
  EXPECT_EQ(service.metrics().counter("queries_cancelled")->Value(), 1u);
}

TEST_F(ServiceTest, ShutdownFailsQueuedQueriesButFulfillsEveryFuture) {
  SOlapEngine engine(data_.groups, data_.hierarchies.get());
  ServiceOptions opts;
  opts.num_threads = 1;
  QueryService service(&engine, opts);

  std::vector<QueryService::Ticket> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(service.Submit(XYSpec(), Cb()));
  }
  service.Shutdown();
  int resolved = 0;
  for (auto& t : tickets) {
    QueryResponse resp = t.response.get();  // must not hang
    ++resolved;
    EXPECT_TRUE(resp.status.ok() ||
                resp.status.code() == StatusCode::kCancelled)
        << resp.status.ToString();
  }
  EXPECT_EQ(resolved, 4);
  // Post-shutdown submissions shed immediately.
  QueryResponse late = service.Run(XYSpec(), Cb());
  EXPECT_EQ(late.status.code(), StatusCode::kResourceExhausted);
}

TEST_F(ServiceTest, SessionOpsExecuteThroughTheService) {
  SOlapEngine engine(data_.groups, data_.hierarchies.get());
  QueryService service(&engine);
  SessionId id = service.OpenSession(XYSpec());

  auto first = service.SubmitSessionCurrent(id, Cb());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->response.get().status.ok());

  SessionOp rollup{"prollup", "X", {}, "", {}};
  auto second = service.SubmitSessionOp(id, rollup, Cb());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  QueryResponse resp = second->response.get();
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_GT(resp.cuboid->num_cells(), 0u);

  service.CloseSession(id);
  EXPECT_EQ(service.SubmitSessionCurrent(id).status().code(),
            StatusCode::kNotFound);
}

// ------------------------------------------------------- Memory & degradation

TEST_F(ServiceTest, TinyBudgetDegradesIiToCbWithIdenticalResults) {
  // Fault-free reference: the same spec on an unconstrained engine.
  SOlapEngine reference(data_.groups, data_.hierarchies.get());
  auto expected = reference.Execute(XYSpec(), ExecStrategy::kCounterBased);
  ASSERT_TRUE(expected.ok());

  EngineOptions constrained;
  constrained.memory_budget_bytes = 4096;  // far below any index over 20k seqs
  SOlapEngine engine(data_.groups, data_.hierarchies.get(), constrained);
  QueryService service(&engine);

  SubmitOptions ii;
  ii.strategy = ExecStrategy::kInvertedIndex;
  QueryResponse resp = service.Run(XYSpec(), ii);
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  ASSERT_NE(resp.cuboid, nullptr);

  // The query degraded to the CB path (II could not fit its index in the
  // budget) and the answer is bit-identical to the reference.
  EXPECT_GE(resp.stats.degraded_queries, 1u);
  EXPECT_GE(engine.governor().rejects(), 1u);
  ASSERT_EQ(resp.cuboid->num_cells(), (*expected)->num_cells());
  for (const auto& [key, cell] : (*expected)->cells()) {
    EXPECT_EQ(resp.cuboid->CellAt(key).count, cell.count);
  }
  EXPECT_EQ(service.metrics().counter("degraded_queries")->Value(),
            resp.stats.degraded_queries);
}

TEST_F(ServiceTest, ResourceMetricsSurfaceGovernorAndIoState) {
  EngineOptions constrained;
  constrained.memory_budget_bytes = 4096;
  SOlapEngine engine(data_.groups, data_.hierarchies.get(), constrained);
  QueryService service(&engine);

  SubmitOptions ii;
  ii.strategy = ExecStrategy::kInvertedIndex;
  ASSERT_TRUE(service.Run(XYSpec(), ii).status.ok());

  service.RefreshResourceMetrics();
  EXPECT_EQ(service.metrics().gauge("mem_budget_bytes")->Value(), 4096u);
  EXPECT_GE(service.metrics().gauge("mem_budget_rejects")->Value(), 1u);
  EXPECT_GE(service.metrics().counter("degraded_queries")->Value(), 1u);

  const std::string text = service.metrics().ToString();
  for (const char* name : {"mem_used_bytes", "mem_budget_bytes",
                           "mem_budget_rejects", "io_retries",
                           "degraded_queries"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

TEST_F(ServiceTest, UnlimitedBudgetTracksUsageWithoutRejecting) {
  SOlapEngine engine(data_.groups, data_.hierarchies.get());
  SubmitOptions ii;
  ii.strategy = ExecStrategy::kInvertedIndex;
  QueryService service(&engine);
  QueryResponse resp = service.Run(XYSpec(), ii);
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.stats.degraded_queries, 0u);
  EXPECT_EQ(engine.governor().rejects(), 0u);
  EXPECT_GT(engine.governor().used(), 0u);  // cached index bytes are charged
}

// --------------------------------------------------------------------- Shell

TEST(ShellServiceTest, ServeCommandsDriveTheService) {
  std::ostringstream out;
  ShellSession shell(out);
  EXPECT_TRUE(shell.ExecLine("generate synthetic 500"));
  EXPECT_TRUE(shell.ExecLine("serve start 2"));
  EXPECT_NE(out.str().find("service started: 2 threads"),
            std::string::npos);

  EXPECT_TRUE(shell.ExecLine(
      "select COUNT(*) FROM S CLUSTER BY x AT x SEQUENCE BY t CUBOID BY "
      "SUBSTRING (X, Y) WITH X AS symbol AT symbol, Y AS symbol AT symbol "
      "LEFT-MAXIMALITY;"));
  EXPECT_TRUE(shell.ExecLine("serve status"));
  EXPECT_NE(out.str().find("service: running"), std::string::npos);

  out.str("");
  EXPECT_TRUE(shell.ExecLine("metrics"));
  EXPECT_NE(out.str().find("queries_ok"), std::string::npos);
  EXPECT_NE(out.str().find("queue_wait_ms"), std::string::npos);

  EXPECT_TRUE(shell.ExecLine("serve stop"));
  out.str("");
  EXPECT_TRUE(shell.ExecLine("metrics"));  // error printed, session survives
  EXPECT_NE(out.str().find("error"), std::string::npos);
}

TEST(ShellServiceTest, GenerateResetsARunningService) {
  std::ostringstream out;
  ShellSession shell(out);
  EXPECT_TRUE(shell.ExecLine("generate synthetic 500"));
  EXPECT_TRUE(shell.ExecLine("serve start 2"));
  // Regenerating replaces the engine; the service must not survive it.
  EXPECT_TRUE(shell.ExecLine("generate synthetic 500"));
  EXPECT_TRUE(shell.ExecLine("serve status"));
  EXPECT_NE(out.str().find("service: not running"), std::string::npos);
}

}  // namespace
}  // namespace solap
