// Tests for the materialization advisor (the §4.2.2 "which inverted
// indices should be materialized offline" question).
#include <gtest/gtest.h>

#include "solap/engine/advisor.h"
#include "solap/engine/optimizer.h"
#include "solap/gen/synthetic.h"

namespace solap {
namespace {

SyntheticData SmallData() {
  SyntheticParams p;
  p.num_sequences = 600;
  p.num_symbols = 15;
  p.mean_length = 8;
  return GenerateSynthetic(p);
}

CuboidSpec Spec(std::vector<std::string> symbols) {
  CuboidSpec s;
  s.symbols = symbols;
  std::vector<std::string> seen;
  for (const std::string& sym : symbols) {
    if (std::find(seen.begin(), seen.end(), sym) != seen.end()) continue;
    s.dims.push_back(PatternDim{sym, {SyntheticData::kAttr, "symbol"}, {}, ""});
    seen.push_back(sym);
  }
  return s;
}

TEST(AdvisorTest, RecommendsWindowsAndFullShapes) {
  SyntheticData data = SmallData();
  SOlapEngine engine(data.groups, data.hierarchies.get());
  MaterializationAdvisor advisor(&engine);
  std::vector<WorkloadQuery> workload = {
      {Spec({"X", "Y"}), 1.0},
      {Spec({"X", "Y", "Z"}), 1.0},
  };
  auto recs = advisor.Recommend(workload, size_t{1} << 30);
  ASSERT_TRUE(recs.ok()) << recs.status().ToString();
  // Candidates: the (shared) L2 window + the L3 full shape. The L2 window
  // of (X,Y) coincides with both windows of (X,Y,Z) (same levels).
  ASSERT_EQ(recs->size(), 2u);
  bool has_l2 = false, has_l3 = false;
  for (const IndexRecommendation& r : *recs) {
    if (r.shape.size() == 2) has_l2 = true;
    if (r.shape.size() == 3) has_l3 = true;
    EXPECT_GT(r.benefit, 0);
    EXPECT_GT(r.estimated_bytes, 0u);
    EXPECT_FALSE(r.ToString().empty());
  }
  EXPECT_TRUE(has_l2 && has_l3);
}

TEST(AdvisorTest, SharedWindowsAccumulateBenefit) {
  SyntheticData data = SmallData();
  SOlapEngine engine(data.groups, data.hierarchies.get());
  MaterializationAdvisor advisor(&engine);
  // Three queries all touching the same L2 window vs one L1-only query.
  std::vector<WorkloadQuery> workload = {
      {Spec({"X", "Y"}), 1.0},
      {Spec({"X", "Y"}), 1.0},
      {Spec({"A", "B"}), 1.0},  // same levels -> same window candidate
      {Spec({"X"}), 1.0},
  };
  auto recs = advisor.Recommend(workload, size_t{1} << 30);
  ASSERT_TRUE(recs.ok());
  double l2_benefit = 0, l1_benefit = 0;
  for (const IndexRecommendation& r : *recs) {
    if (r.shape.size() == 2) l2_benefit = r.benefit;
    if (r.shape.size() == 1) l1_benefit = r.benefit;
  }
  EXPECT_DOUBLE_EQ(l2_benefit, 3 * 600.0);
  EXPECT_DOUBLE_EQ(l1_benefit, 600.0);
}

TEST(AdvisorTest, BudgetCapsTheSelection) {
  SyntheticData data = SmallData();
  SOlapEngine engine(data.groups, data.hierarchies.get());
  MaterializationAdvisor advisor(&engine);
  std::vector<WorkloadQuery> workload = {{Spec({"X", "Y", "Z"}), 1.0}};
  auto all = advisor.Recommend(workload, size_t{1} << 30);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 2u);  // the L2 window + the L3 shape
  size_t small_budget = 0;
  for (const IndexRecommendation& r : *all) {
    small_budget = std::max(small_budget, r.estimated_bytes);
  }
  // A budget fitting only the cheaper candidate keeps exactly one.
  size_t min_bytes = std::min((*all)[0].estimated_bytes,
                              (*all)[1].estimated_bytes);
  auto capped = advisor.Recommend(workload, min_bytes);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->size(), 1u);
  auto nothing = advisor.Recommend(workload, 0);
  ASSERT_TRUE(nothing.ok());
  EXPECT_TRUE(nothing->empty());
}

TEST(AdvisorTest, MaterializeFeedsTheOptimizerAndEngine) {
  SyntheticData data = SmallData();
  SOlapEngine engine(data.groups, data.hierarchies.get());
  MaterializationAdvisor advisor(&engine);
  CuboidSpec q = Spec({"X", "Y"});
  auto recs = advisor.Recommend({{q, 1.0}}, size_t{1} << 30);
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  ASSERT_TRUE(advisor.Materialize(*recs).ok());
  EXPECT_GT(engine.IndexCacheBytes(), 0u);

  // The optimizer now sees the exact index: zero-cost II.
  StrategyOptimizer opt(&engine);
  auto choice = opt.Choose(q);
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->strategy, ExecStrategy::kInvertedIndex);
  EXPECT_DOUBLE_EQ(choice->ii_cost, 0.0);

  // Executing uses the materialized index: no sequences scanned.
  uint64_t before = engine.stats().sequences_scanned;
  auto r = engine.Execute(q, ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(engine.stats().sequences_scanned, before);

  // Already-materialized shapes stop being recommended.
  auto again = advisor.Recommend({{q, 1.0}}, size_t{1} << 30);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->empty());
}

TEST(AdvisorTest, RegexQueriesContributeNothing) {
  SyntheticData data = SmallData();
  SOlapEngine engine(data.groups, data.hierarchies.get());
  MaterializationAdvisor advisor(&engine);
  CuboidSpec regex;
  regex.regex = "X ( . )* X";
  regex.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""}};
  auto recs = advisor.Recommend({{regex, 5.0}}, size_t{1} << 30);
  ASSERT_TRUE(recs.ok());
  EXPECT_TRUE(recs->empty());
}

TEST(AdvisorTest, SampledFootprintIsInTheRightBallpark) {
  SyntheticData data = SmallData();
  SOlapEngine engine(data.groups, data.hierarchies.get());
  MaterializationAdvisor advisor(&engine);
  advisor.set_sample_sequences(100);
  CuboidSpec q = Spec({"X", "Y"});
  auto recs = advisor.Recommend({{q, 1.0}}, size_t{1} << 30);
  ASSERT_TRUE(recs.ok());
  ASSERT_EQ(recs->size(), 1u);
  // Build the exact index to compare.
  ASSERT_TRUE(advisor.Materialize(*recs).ok());
  size_t actual = engine.IndexCacheBytes();
  size_t estimated = (*recs)[0].estimated_bytes;
  EXPECT_GT(estimated, actual / 4);
  EXPECT_LT(estimated, actual * 4);
}

}  // namespace
}  // namespace solap
