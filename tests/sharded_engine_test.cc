// Sharded scatter-gather execution must be invisible to query results:
// partitioning the sequences across N shard-local engines and merging their
// partial cuboids (DESIGN.md "Sharded execution") may change nothing a
// client can observe. These tests pin that contract for 1 vs 2 vs 8 shards
// across a QuerySet-A-style iterative session under both strategies,
// table-backed FP SUM merges, iceberg-after-merge semantics, the
// non-shardable fallback route, the gathered complete index, and — in
// failpoint builds — a chaos run with every engine failpoint armed.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "solap/common/trace.h"
#include "solap/engine/engine.h"
#include "solap/engine/operations.h"
#include "solap/engine/sharded_engine.h"
#include "solap/gen/synthetic.h"
#include "solap/gen/transit.h"
#include "solap/index/build_index.h"
#include "solap/service/query_service.h"

#ifdef SOLAP_FAILPOINTS
#include "solap/common/failpoint.h"
#include <functional>
#endif

namespace solap {
namespace {

// Exact comparison of the full aggregate state of every cell — the merge
// must reproduce the monolithic engine's doubles to the last ulp, not just
// the counts (same bar as parallel_ii_test).
void ExpectCuboidsIdentical(const SCuboid& a, const SCuboid& b,
                            const std::string& what) {
  ASSERT_EQ(a.num_cells(), b.num_cells()) << what;
  for (const auto& [key, cell] : a.cells()) {
    CellValue other = b.CellAt(key);
    EXPECT_EQ(cell.count, other.count) << what;
    EXPECT_EQ(cell.sum, other.sum) << what;  // exact, not near
    EXPECT_TRUE(cell.min == other.min ||
                (std::isinf(cell.min) && std::isinf(other.min)))
        << what;
    EXPECT_TRUE(cell.max == other.max ||
                (std::isinf(cell.max) && std::isinf(other.max)))
        << what;
  }
}

SyntheticData SmallSynthetic() {
  SyntheticParams p;
  p.num_sequences = 1500;
  p.num_symbols = 20;
  p.mean_length = 8;
  p.seed = 17;
  return GenerateSynthetic(p);
}

CuboidSpec PairSpec() {
  CuboidSpec spec;
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""},
               PatternDim{"Y", {SyntheticData::kAttr, "symbol"}, {}, ""}};
  return spec;
}

EngineOptions ShardOpts(size_t shards) {
  EngineOptions o;
  o.shards = shards;
  // Force a real fan-out pool even on small boxes (the pool is clamped to
  // the shard count; shard-local engines always run serial) so the
  // concurrent scatter path is what TSan and the chaos mode exercise.
  o.exec_threads = 4;
  return o;
}

// One query of a QuerySet-A iterative session (paper §5.2): slice the
// previous result's top cell, APPEND a fresh symbol, run. Mirrors
// bench_util.h RunQaSession but keeps the result cuboids and per-query
// stats for comparison.
struct QaStep {
  std::shared_ptr<const SCuboid> cuboid;
  ScanStats stats;
};

std::vector<QaStep> RunQa(ShardedEngine& engine, ExecStrategy strategy,
                          size_t num_queries) {
  std::vector<QaStep> out;
  CuboidSpec spec = PairSpec();
  const LevelRef append_ref{SyntheticData::kAttr, "symbol"};
  for (size_t q = 0; q < num_queries; ++q) {
    if (q > 0) {
      CellKey top = out.back().cuboid->ArgMaxCell();
      if (top.empty()) break;
      auto sliced = ops::SliceToCell(spec, *out.back().cuboid, top);
      if (!sliced.ok()) ADD_FAILURE() << sliced.status().ToString();
      auto appended =
          ops::Append(*sliced, "S" + std::to_string(q), append_ref);
      if (!appended.ok()) ADD_FAILURE() << appended.status().ToString();
      spec = *appended;
    }
    QaStep step;
    ExecControl control;
    control.stats_out = &step.stats;
    auto r = engine.Execute(spec, strategy, control);
    if (!r.ok()) {
      ADD_FAILURE() << "QA" << (q + 1) << ": " << r.status().ToString();
      break;
    }
    step.cuboid = *r;
    out.push_back(std::move(step));
  }
  return out;
}

TEST(ShardedEngine, OneShardIsBitIdenticalToPlainEngine) {
  SyntheticData data = SmallSynthetic();
  SOlapEngine plain(data.groups, data.hierarchies.get());
  ShardedEngine sharded(data.groups, data.hierarchies.get(), ShardOpts(1));
  CuboidSpec spec = PairSpec();
  for (ExecStrategy s :
       {ExecStrategy::kCounterBased, ExecStrategy::kInvertedIndex}) {
    auto a = plain.Execute(spec, s);
    auto b = sharded.Execute(spec, s);
    ASSERT_TRUE(a.ok() && b.ok());
    ExpectCuboidsIdentical(**a, **b, "1-shard delegate");
  }
  // The legacy path, not the scatter path: no scatter counters tick.
  EXPECT_EQ(sharded.StatsSnapshot().shard_scatters, 0u);
  EXPECT_EQ(sharded.StatsSnapshot().shard_fallbacks, 0u);
  EXPECT_EQ(plain.stats().sequences_scanned,
            sharded.StatsSnapshot().sequences_scanned);
}

// The tentpole invariant: a QuerySet-A session (QA1..QA5) returns
// bit-identical cuboids whether the data lives in 1, 2 or 8 shards, under
// both pinned strategies, and the summed ScanStats agree on the
// partition-invariant counter (every sequence is scanned by exactly one
// shard).
TEST(ShardedEngine, QaSessionBitIdenticalAcross1v2v8Shards) {
  SyntheticData data = SmallSynthetic();
  for (ExecStrategy strategy :
       {ExecStrategy::kCounterBased, ExecStrategy::kInvertedIndex}) {
    const char* sname =
        strategy == ExecStrategy::kCounterBased ? "CB" : "II";
    ShardedEngine one(data.groups, data.hierarchies.get(), ShardOpts(1));
    ShardedEngine two(data.groups, data.hierarchies.get(), ShardOpts(2));
    ShardedEngine eight(data.groups, data.hierarchies.get(), ShardOpts(8));
    auto qa1 = RunQa(one, strategy, 5);
    auto qa2 = RunQa(two, strategy, 5);
    auto qa8 = RunQa(eight, strategy, 5);
    ASSERT_EQ(qa1.size(), qa2.size()) << sname;
    ASSERT_EQ(qa1.size(), qa8.size()) << sname;
    for (size_t q = 0; q < qa1.size(); ++q) {
      const std::string what =
          std::string(sname) + " QA" + std::to_string(q + 1);
      ExpectCuboidsIdentical(*qa1[q].cuboid, *qa2[q].cuboid,
                             what + " 1v2 shards");
      ExpectCuboidsIdentical(*qa1[q].cuboid, *qa8[q].cuboid,
                             what + " 1v8 shards");
      // Top cell drives the next slice; pin it explicitly too.
      EXPECT_EQ(qa1[q].cuboid->ArgMaxCell(), qa8[q].cuboid->ArgMaxCell())
          << what;
      // Merged per-query stats: the shards together scan exactly the
      // sequences the monolith scans.
      EXPECT_EQ(qa1[q].stats.sequences_scanned,
                qa8[q].stats.sequences_scanned)
          << what;
    }
    // Engine-total ScanStats sums agree too.
    EXPECT_EQ(one.StatsSnapshot().sequences_scanned,
              eight.StatsSnapshot().sequences_scanned)
        << sname;
    // And the sharded engines actually scattered.
    EXPECT_EQ(eight.StatsSnapshot().shard_scatters, qa8.size());
    EXPECT_EQ(eight.StatsSnapshot().shard_partials, 8 * qa8.size());
  }
}

TEST(ShardedEngine, ScatterEmitsCountersAndTraceSpans) {
  SyntheticData data = SmallSynthetic();
  ShardedEngine engine(data.groups, data.hierarchies.get(), ShardOpts(4));
  TraceContext trace;
  ScanStats stats;
  ExecControl control;
  control.stats_out = &stats;
  control.trace = &trace;
  auto r = engine.Execute(PairSpec(), ExecStrategy::kCounterBased, control);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(stats.shard_scatters, 1u);
  EXPECT_EQ(stats.shard_partials, 4u);
  EXPECT_GT(stats.shard_merged_cells, 0u);
  EXPECT_EQ(stats.shard_fallbacks, 0u);

  auto spans = trace.Snapshot();
  int scatter_id = -1;
  size_t execs = 0, gathers = 0;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].name == "shard.scatter") scatter_id = static_cast<int>(i);
  }
  ASSERT_GE(scatter_id, 0) << "no shard.scatter span recorded";
  for (const auto& span : spans) {
    if (span.name == "shard.exec") {
      ++execs;
      // Pool-side spans hang under the scatter span that spawned them.
      EXPECT_EQ(span.parent, scatter_id);
    }
    if (span.name == "shard.gather") ++gathers;
  }
  EXPECT_EQ(execs, 4u);
  EXPECT_EQ(gathers, 1u);
}

TEST(ShardedEngine, RepeatQueryHitsFacadeRepository) {
  SyntheticData data = SmallSynthetic();
  ShardedEngine engine(data.groups, data.hierarchies.get(), ShardOpts(4));
  CuboidSpec spec = PairSpec();
  auto first = engine.Execute(spec, ExecStrategy::kCounterBased);
  ASSERT_TRUE(first.ok());
  ScanStats repeat_stats;
  ExecControl control;
  control.stats_out = &repeat_stats;
  auto second = engine.Execute(spec, ExecStrategy::kCounterBased, control);
  ASSERT_TRUE(second.ok());
  ExpectCuboidsIdentical(**first, **second, "repository repeat");
  // Served from the facade repository: one hit, no second scatter.
  EXPECT_EQ(repeat_stats.repository_hits, 1u);
  EXPECT_EQ(repeat_stats.shard_scatters, 0u);
  EXPECT_EQ(engine.StatsSnapshot().shard_scatters, 1u);
}

// Table-backed scatter with a non-summarizable-order measure: COUNT /
// MIN / MAX state merges exactly; FP SUM is merged as partial state, so
// reassociation may change low-order bits but nothing more.
TEST(ShardedEngine, TransitSumMergesExactlyUpToReassociation) {
  TransitParams tp;
  tp.num_passengers = 1200;
  tp.num_days = 2;
  TransitData transit = GenerateTransit(tp);
  CuboidSpec spec;
  spec.agg = AggKind::kSum;
  spec.measure = "amount";
  spec.seq.cluster_by = {{"card-id", "individual"}};
  spec.seq.sequence_by = "time";
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {"location", "station"}, {}, ""},
               PatternDim{"Y", {"location", "station"}, {}, ""}};

  EngineOptions sharded_opts = ShardOpts(4);
  sharded_opts.shard_by = "card-id";
  ShardedEngine one(transit.table.get(), transit.hierarchies.get(),
                    ShardOpts(1));
  ShardedEngine four(transit.table.get(), transit.hierarchies.get(),
                     sharded_opts);
  auto a = one.Execute(spec, ExecStrategy::kCounterBased);
  auto b = four.Execute(spec, ExecStrategy::kCounterBased);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ((*a)->num_cells(), (*b)->num_cells());
  for (const auto& [key, cell] : (*a)->cells()) {
    CellValue other = (*b)->CellAt(key);
    EXPECT_EQ(cell.count, other.count);
    EXPECT_EQ(cell.min, other.min);  // min/max commute exactly
    EXPECT_EQ(cell.max, other.max);
    EXPECT_NEAR(cell.sum, other.sum, 1e-6 * (1.0 + std::fabs(cell.sum)));
  }
  EXPECT_EQ(four.StatsSnapshot().shard_scatters, 1u);
  EXPECT_EQ(one.StatsSnapshot().sequences_scanned,
            four.StatsSnapshot().sequences_scanned);
}

// CLUSTER BY at a coarser level than the shard-by attribute could group
// rows from different shards into one logical sequence — the engine must
// refuse to scatter and route to the monolithic fallback instead.
TEST(ShardedEngine, CoarseClusterByRoutesToFallback) {
  TransitParams tp;
  tp.num_passengers = 600;
  tp.num_days = 1;
  TransitData transit = GenerateTransit(tp);
  CuboidSpec spec;
  spec.seq.cluster_by = {{"card-id", "fare-group"}};
  spec.seq.sequence_by = "time";
  spec.symbols = {"X"};
  spec.dims = {PatternDim{"X", {"location", "station"}, {}, ""}};

  EngineOptions opts = ShardOpts(4);
  opts.shard_by = "card-id";
  ShardedEngine sharded(transit.table.get(), transit.hierarchies.get(), opts);
  EXPECT_FALSE(sharded.Shardable(spec));
  SOlapEngine plain(transit.table.get(), transit.hierarchies.get());
  auto a = plain.Execute(spec, ExecStrategy::kCounterBased);
  auto b = sharded.Execute(spec, ExecStrategy::kCounterBased);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ExpectCuboidsIdentical(**a, **b, "fallback route");
  EXPECT_EQ(sharded.StatsSnapshot().shard_fallbacks, 1u);
  EXPECT_EQ(sharded.StatsSnapshot().shard_scatters, 0u);
}

// Iceberg pruning is a HAVING over *global* counts: a cell whose per-shard
// counts all sit below the threshold must still survive when its merged
// count clears it. The facade therefore strips the iceberg from shard
// specs and applies it after the merge.
TEST(ShardedEngine, IcebergAppliedAfterMergeNotPerShard) {
  SyntheticData data = SmallSynthetic();
  CuboidSpec spec = PairSpec();
  SOlapEngine plain(data.groups, data.hierarchies.get());
  auto unfiltered = plain.Execute(spec, ExecStrategy::kCounterBased);
  ASSERT_TRUE(unfiltered.ok());
  // Pick a threshold that filters some cells but keeps others whose
  // per-shard share (count/8) falls below it — the case a per-shard
  // iceberg would wrongly drop.
  int64_t max_count = 0;
  for (const auto& [key, cell] : (*unfiltered)->cells()) {
    max_count = std::max(max_count, cell.count);
  }
  ASSERT_GT(max_count, 16) << "dataset too small for an iceberg threshold";
  spec.iceberg_min_count = max_count / 2;

  auto expect = plain.Execute(spec, ExecStrategy::kCounterBased);
  ShardedEngine eight(data.groups, data.hierarchies.get(), ShardOpts(8));
  auto got = eight.Execute(spec, ExecStrategy::kCounterBased);
  ASSERT_TRUE(expect.ok() && got.ok());
  ASSERT_GT((*expect)->num_cells(), 0u);
  ASSERT_LT((*expect)->num_cells(), (*unfiltered)->num_cells())
      << "threshold did not filter anything";
  ExpectCuboidsIdentical(**expect, **got, "iceberg after merge");
}

// GatherCompleteIndex: per-shard complete indices, rebased by each shard's
// block base and unioned through the container machinery, reproduce the
// index built over the unpartitioned group exactly.
TEST(ShardedEngine, GatheredCompleteIndexMatchesUnpartitionedBuild) {
  SyntheticData data = SmallSynthetic();
  IndexShape shape;
  shape.positions = {data.Base(), data.Base()};

  // Reference build over a pristine copy of the same (seeded) dataset.
  SyntheticData ref_data = SmallSynthetic();
  ScanStats ref_stats;
  auto ref = BuildIndex(&ref_data.groups->groups()[0], *ref_data.groups,
                        ref_data.hierarchies.get(), shape, &ref_stats);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  ShardedEngine engine(data.groups, data.hierarchies.get(), ShardOpts(4));
  auto gathered = engine.GatherCompleteIndex(0, shape);
  ASSERT_TRUE(gathered.ok()) << gathered.status().ToString();

  ASSERT_EQ((*gathered)->num_lists(), (*ref)->num_lists());
  for (const auto& [key, list] : (*ref)->lists()) {
    const SidList* got = (*gathered)->Find(key);
    ASSERT_NE(got, nullptr);
    std::vector<Sid> want_sids, got_sids;
    list.ForEach([&](Sid s) { want_sids.push_back(s); });
    got->ForEach([&](Sid s) { got_sids.push_back(s); });
    EXPECT_EQ(want_sids, got_sids);
  }
}

// Incremental update: appended raw sequences land in the last shard's
// block; results never depend on sid placement, so the sharded engine
// keeps matching a monolith that received the same batch.
TEST(ShardedEngine, AppendRawSequencesStaysConsistent) {
  SyntheticParams p;
  p.num_sequences = 800;
  p.num_symbols = 15;
  p.mean_length = 7;
  p.seed = 23;
  SyntheticData data = GenerateSynthetic(p);
  SyntheticData mono_data = GenerateSynthetic(p);
  auto batch = GenerateSyntheticBatch(p, 120, /*batch_seed=*/91);

  ShardedEngine sharded(data.groups, data.hierarchies.get(), ShardOpts(4));
  SOlapEngine plain(mono_data.groups, mono_data.hierarchies.get());
  CuboidSpec spec = PairSpec();
  // Warm both (exercises cache invalidation on append).
  ASSERT_TRUE(sharded.Execute(spec, ExecStrategy::kCounterBased).ok());
  ASSERT_TRUE(plain.Execute(spec, ExecStrategy::kCounterBased).ok());
  ASSERT_TRUE(sharded.AppendRawSequences(0, batch).ok());
  ASSERT_TRUE(plain.AppendRawSequences(0, batch).ok());
  auto a = plain.Execute(spec, ExecStrategy::kCounterBased);
  auto b = sharded.Execute(spec, ExecStrategy::kCounterBased);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectCuboidsIdentical(**a, **b, "post-append");
}

// The service front: shard counters flow into the metrics registry.
TEST(ShardedEngine, ServiceExportsShardCounters) {
  SyntheticData data = SmallSynthetic();
  ShardedEngine engine(data.groups, data.hierarchies.get(), ShardOpts(4));
  ServiceOptions sopts;
  sopts.num_threads = 2;
  QueryService service(&engine, sopts);
  QueryResponse resp = service.Run(PairSpec());
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(service.metrics().counter("shard_scatters")->Value(), 1u);
  EXPECT_EQ(service.metrics().counter("shard_partials")->Value(), 4u);
  EXPECT_EQ(service.metrics().counter("shard_fallbacks")->Value(), 0u);
  EXPECT_GT(service.metrics().counter("shard_merged_cells")->Value(), 0u);
}

#ifdef SOLAP_FAILPOINTS

// Chaos: every engine-level failpoint armed at low probability against a
// 4-shard engine. OK responses must stay bit-identical to the fault-free
// reference (per-shard degradation must not corrupt the merge); non-OK
// responses must carry an injected code; after DisarmAll the engine
// answers exactly again.
TEST(ShardedEngineChaos, ScatteredQueriesUnderFaultsStayCorrect) {
  SyntheticData data = SmallSynthetic();
  CuboidSpec spec = PairSpec();
  SOlapEngine reference(data.groups, data.hierarchies.get());
  auto expect = reference.Execute(spec, ExecStrategy::kCounterBased);
  ASSERT_TRUE(expect.ok());

  auto arm = [](const char* name, FailpointConfig::Action action,
                StatusCode code, double prob) {
    FailpointConfig c;
    c.action = action;
    c.code = code;
    c.probability = prob;
    c.seed = 20260809u ^ std::hash<std::string>{}(name);
    FailpointRegistry::Global().Arm(name, c);
  };
  using Action = FailpointConfig::Action;
  const double p = 0.05;
  arm("index.build", Action::kReturnError, StatusCode::kInternal, p);
  arm("index.join", Action::kThrowBadAlloc, StatusCode::kInternal, p);
  arm("join.scratch", Action::kReturnError, StatusCode::kResourceExhausted,
      p);
  arm("index.rollup", Action::kReturnError, StatusCode::kInternal, p);
  arm("engine.formation", Action::kReturnError, StatusCode::kInternal, p);
  arm("mem.charge", Action::kReturnError, StatusCode::kResourceExhausted,
      p / 2);

  ShardedEngine engine(data.groups, data.hierarchies.get(), ShardOpts(4));
  const ExecStrategy strategies[] = {ExecStrategy::kCounterBased,
                                     ExecStrategy::kInvertedIndex,
                                     ExecStrategy::kAuto};
  size_t ok_count = 0;
  for (size_t q = 0; q < 120; ++q) {
    auto r = engine.Execute(spec, strategies[q % 3]);
    if (r.ok()) {
      ++ok_count;
      ASSERT_EQ((*r)->num_cells(), (*expect)->num_cells());
      for (const auto& [key, cell] : (*expect)->cells()) {
        ASSERT_EQ((*r)->CellAt(key).count, cell.count);
      }
    } else {
      // Injected faults surface as the injected code or the engine's
      // degradation of it; nothing else is acceptable.
      StatusCode code = r.status().code();
      EXPECT_TRUE(code == StatusCode::kInternal ||
                  code == StatusCode::kResourceExhausted)
          << r.status().ToString();
    }
  }
  EXPECT_GT(ok_count, 0u);

  FailpointRegistry::Global().DisarmAll();
  auto after = engine.Execute(spec, ExecStrategy::kCounterBased);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ExpectCuboidsIdentical(**expect, **after, "post-disarm");
}

#endif  // SOLAP_FAILPOINTS

}  // namespace
}  // namespace solap
