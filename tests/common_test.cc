// Unit tests for the common module: Status/Result, string helpers, stats.
#include <gtest/gtest.h>

#include "solap/common/status.h"
#include "solap/common/stats.h"
#include "solap/common/strings.h"
#include "solap/common/timer.h"
#include "solap/common/types.h"

namespace solap {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad level");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad level");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad level");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(41);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 41);
  *r += 1;
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  SOLAP_ASSIGN_OR_RETURN(int h, Half(x));
  SOLAP_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> odd = Quarter(6);  // 6/2 = 3 is odd
  ASSERT_FALSE(odd.ok());
  EXPECT_EQ(odd.status().code(), StatusCode::kInvalidArgument);
}

TEST(StringsTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(Join({}, ","), "");
  std::vector<std::string> parts = Split("a,,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(ToLower("SubString"), "substring");
  EXPECT_TRUE(EqualsIgnoreCase("LEFT-MAXIMALITY", "left-maximality"));
  EXPECT_FALSE(EqualsIgnoreCase("LEFT-MAXIMALITY", "LEFT-MAXIMALITY-DATA"));
}

TEST(StatsTest, AccumulatesAndPrints) {
  ScanStats a, b;
  a.sequences_scanned = 10;
  a.lists_built = 2;
  b.sequences_scanned = 5;
  b.index_bytes_built = 100;
  a += b;
  EXPECT_EQ(a.sequences_scanned, 15u);
  EXPECT_EQ(a.index_bytes_built, 100u);
  EXPECT_NE(a.ToString().find("scanned=15"), std::string::npos);
  a.Clear();
  EXPECT_EQ(a.sequences_scanned, 0u);
}

TEST(TypesTest, CodeVecHashDiscriminates) {
  CodeVecHash h;
  EXPECT_NE(h(PatternKey{1, 2}), h(PatternKey{2, 1}));
  EXPECT_EQ(h(PatternKey{1, 2}), h(PatternKey{1, 2}));
  EXPECT_NE(h(PatternKey{}), h(PatternKey{0}));
  // The hash reads elements through data()/size(), so a std::vector with
  // the same contents hashes identically to a PatternKey — heap-spilled
  // and inline keys interoperate in the same map.
  EXPECT_EQ(h(PatternKey{3, 1, 4, 1, 5}), h(std::vector<Code>{3, 1, 4, 1, 5}));
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.ElapsedMs(), 0.0);
  EXPECT_GE(t.ElapsedSec(), 0.0);
  t.Reset();
  EXPECT_GE(t.ElapsedMs(), 0.0);
}

}  // namespace
}  // namespace solap
