// Tests for the interactive shell (the Fig. 6 "User Interface"), driven
// through string streams.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "solap/tools/shell.h"

namespace solap {
namespace {

// Runs a scripted session; returns everything the shell printed.
std::string RunScript(const std::string& script) {
  std::ostringstream out;
  ShellSession session(out);
  std::istringstream in(script);
  session.Run(in);
  return out.str();
}

TEST(ShellTest, HelpAndUnknownCommands) {
  std::string out = RunScript("help\nfrobnicate\nquit\n");
  EXPECT_NE(out.find("commands:"), std::string::npos);
  EXPECT_NE(out.find("unknown command 'frobnicate'"), std::string::npos);
}

TEST(ShellTest, RequiresDataBeforeQuerying) {
  std::string out = RunScript(
      "select COUNT(*) FROM E CLUSTER BY a AT a SEQUENCE BY t CUBOID BY "
      "SUBSTRING (X) WITH X AS p AT p LEFT-MAXIMALITY;\nquit\n");
  EXPECT_NE(out.find("no data yet"), std::string::npos);
}

TEST(ShellTest, GenerateQueryAndNavigate) {
  std::string out = RunScript(R"(
generate transit 100
select COUNT(*) FROM Event
  CLUSTER BY card-id AT individual, time AT day
  SEQUENCE BY time ASCENDING
  CUBOID BY SUBSTRING (X, Y)
    WITH X AS location AT station, Y AS location AT station
    LEFT-MAXIMALITY;
rollup Y
slice Y D10
detail
quit
)");
  EXPECT_NE(out.find("generated transit workload"), std::string::npos);
  // The multi-line query executed and printed a table header.
  EXPECT_NE(out.find("(X:station, Y:station)  COUNT"), std::string::npos);
  // P-ROLL-UP switched Y to districts.
  EXPECT_NE(out.find("(X:station, Y:district)"), std::string::npos);
  // DE-TAIL dropped Y entirely.
  EXPECT_NE(out.find("(X:station)  COUNT"), std::string::npos);
  EXPECT_EQ(out.find("error:"), std::string::npos) << out;
}

TEST(ShellTest, StrategySwitchAndStats) {
  std::string out = RunScript(R"(
generate synthetic 500
strategy cb
select COUNT(*) FROM S CLUSTER BY x AT x SEQUENCE BY t
  CUBOID BY SUBSTRING (X, Y)
  WITH X AS symbol AT symbol, Y AS symbol AT symbol LEFT-MAXIMALITY;
strategy ii
top 3
stats
strategy warp
quit
)");
  EXPECT_NE(out.find("strategy = cb"), std::string::npos);
  EXPECT_NE(out.find("strategy = ii"), std::string::npos);
  EXPECT_NE(out.find("scanned="), std::string::npos);
  EXPECT_NE(out.find("strategy cb|ii|auto"), std::string::npos);
}

TEST(ShellTest, LatticeNavigation) {
  std::string out = RunScript(R"(
generate transit 50
select COUNT(*) FROM Event CLUSTER BY card-id AT individual
  SEQUENCE BY time CUBOID BY SUBSTRING (X, Y)
  WITH X AS location AT station, Y AS location AT station LEFT-MAXIMALITY;
parents
children
quit
)");
  EXPECT_NE(out.find("parents in the S-cube lattice:"), std::string::npos);
  EXPECT_NE(out.find("children in the S-cube lattice:"), std::string::npos);
  EXPECT_NE(out.find("X@district"), std::string::npos);  // a P-ROLL-UP parent
}

TEST(ShellTest, CsvAndSnapshotRoundTrip) {
  std::string csv_path = ::testing::TempDir() + "shell_events.csv";
  std::string snap_path = ::testing::TempDir() + "shell_events.bin";
  {
    std::ofstream f(csv_path);
    f << "t,user,page\n";
    f << "1,u1,home\n2,u1,search\n3,u1,home\n";
    f << "4,u2,search\n5,u2,home\n";
  }
  std::string out = RunScript(
      "schema t:timestamp,user:string,page:string\n"
      "load csv " + csv_path + "\n" +
      "save snapshot " + snap_path + "\n" +
      "load snapshot " + snap_path + "\n" +
      "select COUNT(*) FROM E CLUSTER BY user AT user SEQUENCE BY t "
      "CUBOID BY SUBSTRING (X, Y) WITH X AS page AT page, "
      "Y AS page AT page LEFT-MAXIMALITY;\n"
      "quit\n");
  EXPECT_NE(out.find("loaded 5 events"), std::string::npos);
  EXPECT_NE(out.find("saved 5 events"), std::string::npos);
  EXPECT_NE(out.find("(home, search)  1"), std::string::npos);
  EXPECT_NE(out.find("(search, home)  2"), std::string::npos);
  std::remove(csv_path.c_str());
  std::remove(snap_path.c_str());
}

TEST(ShellTest, UserDefinedHierarchy) {
  std::string csv_path = ::testing::TempDir() + "shell_hier.csv";
  {
    std::ofstream f(csv_path);
    f << "t,user,page\n1,u1,home\n2,u1,search\n3,u1,cart\n";
  }
  std::string out = RunScript(
      "schema t:timestamp,user:string,page:string\n"
      "hierarchy page page,section\n"
      "map page home browse\n"
      "map page search browse\n"
      "map page cart checkout\n"
      "load csv " + csv_path + "\n" +
      "select COUNT(*) FROM E CLUSTER BY user AT user SEQUENCE BY t "
      "CUBOID BY SUBSTRING (X, Y) WITH X AS page AT section, "
      "Y AS page AT section LEFT-MAXIMALITY;\n"
      "quit\n");
  EXPECT_NE(out.find("(browse, browse)  1"), std::string::npos);
  EXPECT_NE(out.find("(browse, checkout)  1"), std::string::npos);
  std::remove(csv_path.c_str());
}

TEST(ShellTest, RegexQueryThroughTheShell) {
  std::string out = RunScript(R"(
generate transit 100
select COUNT(*) FROM Event CLUSTER BY card-id AT individual, time AT day
  SEQUENCE BY time
  CUBOID BY PATTERN "X ( . )* X" WITH X AS location AT station
  LEFT-MAXIMALITY;
quit
)");
  EXPECT_NE(out.find("(X:station)  COUNT"), std::string::npos);
  EXPECT_EQ(out.find("error:"), std::string::npos) << out;
}

TEST(ShellTest, ServeStartPrintsTheBoundPortAndServesHttp) {
  std::ostringstream out;
  ShellSession session(out);
  ASSERT_TRUE(session.ExecLine("generate synthetic 200"));
  ASSERT_TRUE(session.ExecLine("serve start 1 4 --port 0"));

  // The printed line is the deterministic handle on the ephemeral port.
  const std::string banner = "listening on 127.0.0.1:";
  size_t pos = out.str().find(banner);
  ASSERT_NE(pos, std::string::npos) << out.str();
  int port = std::atoi(out.str().c_str() + pos + banner.size());
  ASSERT_GT(port, 0);

  // The port is live: a raw GET /healthz answers 200.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string req = "GET /healthz HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string reply;
  char chunk[512];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    reply.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(reply.find("HTTP/1.1 200 OK"), std::string::npos) << reply;
  EXPECT_NE(reply.find("ok"), std::string::npos);

  ASSERT_TRUE(session.ExecLine("serve status"));
  EXPECT_NE(out.str().find("listener: port " + std::to_string(port)),
            std::string::npos);
  ASSERT_TRUE(session.ExecLine("serve stop"));
  EXPECT_NE(out.str().find("listener stopped"), std::string::npos);
  EXPECT_EQ(out.str().find("error:"), std::string::npos) << out.str();
}

TEST(ShellTest, ServeRejectsBadPortArguments) {
  std::string out = RunScript(
      "generate synthetic 100\n"
      "serve start --port 70000\n"
      "serve start --port nonsense\n"
      "quit\n");
  EXPECT_NE(out.find("error:"), std::string::npos);
  EXPECT_EQ(out.find("listening on"), std::string::npos) << out;
}

TEST(ShellTest, SurvivesErrorsAndContinues) {
  std::string out = RunScript(R"(
schema bad
generate transit 30
select nonsense;
select COUNT(*) FROM Event CLUSTER BY card-id AT individual
  SEQUENCE BY time CUBOID BY SUBSTRING (X)
  WITH X AS location AT station LEFT-MAXIMALITY;
quit
)");
  // Two errors, then a successful query.
  EXPECT_NE(out.find("error:"), std::string::npos);
  EXPECT_NE(out.find("(X:station)  COUNT"), std::string::npos);
}

}  // namespace
}  // namespace solap
