// Tests for the structured tracing subsystem (common/trace.h) and the
// histogram/Prometheus metrics extensions (common/metrics.h): span nesting
// and timing monotonicity, histogram bucket boundaries and exact quantiles
// on known data, and a Prometheus text-exposition round-trip.
#include "solap/common/trace.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "solap/common/metrics.h"

namespace solap {
namespace {

using Span = TraceContext::Span;

const Span* FindSpan(const std::vector<Span>& spans, const std::string& name) {
  for (const Span& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(TraceSpanTest, ImplicitNestingFollowsScopes) {
  TraceContext ctx;
  {
    TraceSpan root(&ctx, "root");
    {
      TraceSpan child(&ctx, "child");
      TraceSpan grandchild(&ctx, "grandchild");
      (void)grandchild;
      (void)child;
    }
    TraceSpan sibling(&ctx, "sibling");
    (void)sibling;
    (void)root;
  }
  std::vector<Span> spans = ctx.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  const Span* root = FindSpan(spans, "root");
  const Span* child = FindSpan(spans, "child");
  const Span* grandchild = FindSpan(spans, "grandchild");
  const Span* sibling = FindSpan(spans, "sibling");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent, -1);
  EXPECT_EQ(spans[static_cast<size_t>(child->parent)].name, "root");
  EXPECT_EQ(spans[static_cast<size_t>(grandchild->parent)].name, "child");
  EXPECT_EQ(spans[static_cast<size_t>(sibling->parent)].name, "root");
}

TEST(TraceSpanTest, NullContextIsInactiveAndHarmless) {
  TraceSpan span(nullptr, "nothing");
  EXPECT_FALSE(span.active());
  EXPECT_EQ(span.id(), -1);
  span.Count("k", 1);
  span.Note("k", "v");
  span.End();
}

TEST(TraceSpanTest, ExplicitParentCrossesThreads) {
  TraceContext ctx;
  TraceSpan parent(&ctx, "parent");
  std::thread t([&] {
    TraceSpan shard(&ctx, "shard", parent.id());
    shard.Count("items", 7);
  });
  t.join();
  parent.End();
  std::vector<Span> spans = ctx.Snapshot();
  const Span* shard = FindSpan(spans, "shard");
  ASSERT_NE(shard, nullptr);
  EXPECT_EQ(spans[static_cast<size_t>(shard->parent)].name, "parent");
  // The shard recorded from a different thread gets its own tid ordinal.
  EXPECT_NE(shard->tid, FindSpan(spans, "parent")->tid);
  ASSERT_EQ(shard->counters.size(), 1u);
  EXPECT_EQ(shard->counters[0].first, "items");
  EXPECT_EQ(shard->counters[0].second, 7u);
}

TEST(TraceSpanTest, TimingIsMonotoneAndNested) {
  TraceContext ctx;
  {
    TraceSpan outer(&ctx, "outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      TraceSpan inner(&ctx, "inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  std::vector<Span> spans = ctx.Snapshot();
  const Span* outer = FindSpan(spans, "outer");
  const Span* inner = FindSpan(spans, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_FALSE(outer->open);
  EXPECT_FALSE(inner->open);
  // The child starts after the parent and ends before it.
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns, outer->start_ns + outer->dur_ns);
  EXPECT_GT(inner->dur_ns, 0u);
  EXPECT_GE(outer->dur_ns, inner->dur_ns);
  EXPECT_GE(ctx.TotalMs(),
            static_cast<double>(outer->dur_ns) / 1e6 - 1e-9);
}

TEST(TraceSpanTest, SelfTimesTelescopeToRootInSerialExecution) {
  // The EXPLAIN ANALYZE acceptance check relies on this identity: in a
  // serial execution, the self times (wall minus direct children) of all
  // spans sum exactly to the root's wall time.
  TraceContext ctx;
  {
    TraceSpan root(&ctx, "root");
    {
      TraceSpan a(&ctx, "a");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      TraceSpan a1(&ctx, "a1");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    TraceSpan b(&ctx, "b");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<Span> spans = ctx.Snapshot();
  std::vector<uint64_t> child_ns(spans.size(), 0);
  for (const Span& s : spans) {
    if (s.parent >= 0) child_ns[static_cast<size_t>(s.parent)] += s.dur_ns;
  }
  uint64_t self_sum = 0;
  uint64_t root_dur = 0;
  for (size_t i = 0; i < spans.size(); ++i) {
    self_sum += spans[i].dur_ns - child_ns[i];
    if (spans[i].parent == -1) root_dur = spans[i].dur_ns;
  }
  EXPECT_EQ(self_sum, root_dur);
}

TEST(TraceContextTest, AddTimedSpanRecordsClosedIntervals) {
  const auto before_ctx = std::chrono::steady_clock::now();
  TraceContext ctx;
  const auto a = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const auto b = std::chrono::steady_clock::now();
  int id = ctx.AddTimedSpan("queue_wait", a, b, -1);
  EXPECT_GE(id, 0);
  // Intervals predating the context's epoch clamp to zero instead of
  // wrapping around.
  ctx.AddTimedSpan("pre_epoch", before_ctx, before_ctx, -1);
  std::vector<Span> spans = ctx.Snapshot();
  const Span* wait = FindSpan(spans, "queue_wait");
  ASSERT_NE(wait, nullptr);
  EXPECT_FALSE(wait->open);
  EXPECT_GT(wait->dur_ns, 0u);
  const Span* pre = FindSpan(spans, "pre_epoch");
  ASSERT_NE(pre, nullptr);
  EXPECT_EQ(pre->start_ns, 0u);
  EXPECT_EQ(pre->dur_ns, 0u);
}

TEST(TraceContextTest, ToStringRendersTreeWithCountersAndNotes) {
  TraceContext ctx;
  {
    TraceSpan root(&ctx, "query");
    TraceSpan child(&ctx, "exec.ii");
    child.Count("intersections", 42);
    child.Note("kernel", "galloping");
  }
  std::string s = ctx.ToString();
  EXPECT_NE(s.find("query"), std::string::npos);
  EXPECT_NE(s.find("  exec.ii"), std::string::npos);  // indented child
  EXPECT_NE(s.find("intersections=42"), std::string::npos);
  EXPECT_NE(s.find("kernel=galloping"), std::string::npos);
  EXPECT_NE(s.find("self"), std::string::npos);
}

TEST(TraceContextTest, ChromeJsonHasCompleteEventsAndArgs) {
  TraceContext ctx;
  {
    TraceSpan root(&ctx, "query");
    TraceSpan child(&ctx, "cb.shard");
    child.Count("sequences", 5);
    child.Note("note", "a \"quoted\" value");
  }
  std::string json = ctx.ToChromeJson();
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"cb.shard\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"sequences\":5"), std::string::npos);
  // Quotes inside notes are escaped.
  EXPECT_NE(json.find("a \\\"quoted\\\" value"), std::string::npos);
  // Balanced braces (a cheap structural sanity check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(HistogramTest, BucketBoundariesArePowersOfTwoMicroseconds) {
  Histogram h;
  h.ObserveUs(0.5);    // bucket 0: < 1us
  h.ObserveUs(1.0);    // bucket 1: [1, 2)
  h.ObserveUs(1.99);   // bucket 1
  h.ObserveUs(2.0);    // bucket 2: [2, 4)
  h.ObserveUs(1000.0); // bucket 10: [512, 1024)
  Histogram::Snapshot s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 2u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.buckets[10], 1u);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperUs(0), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperUs(10), 1024.0);
}

TEST(HistogramTest, ExactQuantilesOnKnownData) {
  Histogram h;
  // 90 observations of 1ms (bucket 10, upper bound 1.024ms) and 10 of
  // 10ms (bucket 14, upper bound 16.384ms).
  for (int i = 0; i < 90; ++i) h.ObserveMs(1.0);
  for (int i = 0; i < 10; ++i) h.ObserveMs(10.0);
  Histogram::Snapshot s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.p50_ms, 1.024);
  EXPECT_DOUBLE_EQ(s.p95_ms, 16.384);
  EXPECT_DOUBLE_EQ(s.p99_ms, 16.384);
  EXPECT_NEAR(s.mean_ms, 0.9 * 1.0 + 0.1 * 10.0, 0.01);
}

TEST(MetricsRegistryTest, PrometheusExpositionRoundTrips) {
  MetricsRegistry reg;
  reg.counter("queries_ok")->Inc(3);
  reg.gauge("mem_used_bytes")->Set(1234);
  Histogram* h = reg.histogram("exec_ms_ii");
  h->ObserveMs(1.0);
  h->ObserveMs(1.0);
  h->ObserveMs(100.0);

  std::string text = reg.ToPrometheus();
  EXPECT_NE(text.find("# TYPE solap_queries_ok counter"), std::string::npos);
  EXPECT_NE(text.find("solap_queries_ok 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE solap_mem_used_bytes gauge"),
            std::string::npos);
  EXPECT_NE(text.find("solap_mem_used_bytes 1234"), std::string::npos);
  EXPECT_NE(text.find("# TYPE solap_exec_ms_ii histogram"),
            std::string::npos);

  // Parse the bucket series back: cumulative counts must be monotone and
  // the +Inf bucket must equal _count.
  std::istringstream is(text);
  std::string line;
  uint64_t last_cum = 0;
  uint64_t inf_value = 0;
  uint64_t count_value = 0;
  bool saw_sum = false;
  size_t bucket_lines = 0;
  while (std::getline(is, line)) {
    if (line.rfind("solap_exec_ms_ii_bucket", 0) == 0) {
      ++bucket_lines;
      uint64_t v = std::stoull(line.substr(line.rfind(' ') + 1));
      EXPECT_GE(v, last_cum) << line;
      last_cum = v;
      if (line.find("+Inf") != std::string::npos) inf_value = v;
    } else if (line.rfind("solap_exec_ms_ii_sum", 0) == 0) {
      saw_sum = true;
      EXPECT_NEAR(std::stod(line.substr(line.rfind(' ') + 1)), 102.0, 0.5);
    } else if (line.rfind("solap_exec_ms_ii_count", 0) == 0) {
      count_value = std::stoull(line.substr(line.rfind(' ') + 1));
    }
  }
  EXPECT_EQ(bucket_lines, Histogram::kNumBuckets);
  EXPECT_TRUE(saw_sum);
  EXPECT_EQ(count_value, 3u);
  EXPECT_EQ(inf_value, count_value);
}

}  // namespace
}  // namespace solap
