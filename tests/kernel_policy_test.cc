// Bench-driven assertions on the kernel cost heuristic: for every size
// class the bench measures (bench_ii_kernels scenarios), the kernel
// ChooseIntersectKernel picks must not lose to the linear merge. This is
// the regression the old heuristic shipped — balanced dense pairs
// mispredicted to linear (0.96x of the scalar baseline) and galloping
// fired on barely-skewed pairs. Timing assertions use best-of medians and
// a generous margin so sanitizer builds don't flake; the kernel-choice
// assertions are exact.
//
// NOTE: keep this test out of the TSan filter in tools/check.sh — timing
// under TSan is meaningless.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "solap/common/timer.h"
#include "solap/index/bitmap.h"
#include "solap/index/intersect.h"

namespace solap {
namespace {

std::vector<Sid> RandomSorted(size_t n, size_t universe, std::mt19937& rng) {
  std::vector<Sid> out;
  out.reserve(n);
  double p = static_cast<double>(n) / static_cast<double>(universe);
  std::uniform_real_distribution<> coin(0, 1);
  for (size_t s = 0; s < universe && out.size() < n; ++s) {
    if (coin(rng) < p) out.push_back(static_cast<Sid>(s));
  }
  return out;
}

// The bench's measured size classes (bench_ii_kernels quick mode).
struct SizeClass {
  const char* name;
  size_t a_n, b_n, universe;
};
constexpr size_t kUniverse = 1 << 16;
const SizeClass kClasses[] = {
    {"balanced_dense", kUniverse / 8, kUniverse / 8, kUniverse},
    {"skewed_64x", kUniverse / 256, kUniverse / 4, kUniverse},
    {"needle", 64, kUniverse / 2, kUniverse},
};

TEST(KernelPolicy, MeasuredSizeClassesNeverChooseLinearWhenDense) {
  // balanced_dense: both lists cover 1/8 of the universe — the density
  // term must choose bitmap (the old heuristic chose linear here and lost
  // to the scalar baseline).
  EXPECT_EQ(ChooseIntersectKernel(kUniverse / 8, kUniverse / 8, kUniverse,
                                  false),
            IntersectKernel::kBitmap);
  // skewed_64x: the large side is dense; bitmap beats galloping because
  // the probe count is the SMALL side.
  EXPECT_EQ(ChooseIntersectKernel(kUniverse / 256, kUniverse / 4, kUniverse,
                                  false),
            IntersectKernel::kBitmap);
  // needle: dense large side again.
  EXPECT_EQ(ChooseIntersectKernel(64, kUniverse / 2, kUniverse, false),
            IntersectKernel::kBitmap);
  // Same shapes with an unknown universe: no density term, so the skewed
  // classes gallop and the balanced one merges — never a guess at bitmap
  // that would force an unamortized encoding.
  EXPECT_EQ(ChooseIntersectKernel(kUniverse / 8, kUniverse / 8, 0, false),
            IntersectKernel::kLinear);
  EXPECT_EQ(ChooseIntersectKernel(kUniverse / 256, kUniverse / 4, 0, false),
            IntersectKernel::kGalloping);
  EXPECT_EQ(ChooseIntersectKernel(64, kUniverse / 2, 0, false),
            IntersectKernel::kGalloping);
}

TEST(KernelPolicy, GallopRatioBoundaryIsExact) {
  // Galloping must not fire below the documented break-even ratio: a pair
  // at ratio 15.99 merges, 16.0 gallops. The old integer-division form
  // truncated the quotient and flipped pairs near the boundary.
  for (size_t small : {10u, 100u, 1000u}) {
    EXPECT_EQ(ChooseIntersectKernel(small, small * kGallopSizeRatio - 1, 0,
                                    false),
              IntersectKernel::kLinear)
        << "small=" << small;
    EXPECT_EQ(ChooseIntersectKernel(small, small * kGallopSizeRatio, 0,
                                    false),
              IntersectKernel::kGalloping)
        << "small=" << small;
  }
}

// Times fn as the median of `runs` timed repetitions.
template <typename Fn>
double MedianMs(size_t runs, size_t reps, Fn&& fn) {
  std::vector<double> ms;
  for (size_t r = 0; r < runs; ++r) {
    Timer t;
    for (size_t i = 0; i < reps; ++i) fn();
    ms.push_back(t.ElapsedMs() / static_cast<double>(reps));
  }
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

TEST(KernelPolicy, AdaptiveNeverSlowerThanLinearOnMeasuredClasses) {
  std::mt19937 rng(8);
  for (const SizeClass& sc : kClasses) {
    std::vector<Sid> a = RandomSorted(sc.a_n, sc.universe, rng);
    std::vector<Sid> b = RandomSorted(sc.b_n, sc.universe, rng);
    std::vector<Sid> out;
    out.reserve(std::min(a.size(), b.size()));
    IntersectScratch scratch;
    const size_t reps = 50;
    const double linear_ms = MedianMs(5, reps, [&] {
      IntersectLinear(a, b, out);
    });
    const double adaptive_ms = MedianMs(5, reps, [&] {
      IntersectAdaptive(a, b, sc.universe, nullptr, &scratch, out);
    });
    // 1.25x margin absorbs scheduler and sanitizer noise; a misprediction
    // back to the old behavior costs far more (balanced was ~14x off the
    // bitmap kernel).
    EXPECT_LE(adaptive_ms, linear_ms * 1.25)
        << sc.name << ": adaptive " << adaptive_ms << " ms vs linear "
        << linear_ms << " ms";
  }
}

}  // namespace
}  // namespace solap
