// Unit tests for the bitmap extension (paper §6): bitsets, bitmap-encoded
// inverted indices, and equivalence of AND-joins with list intersection.
#include <gtest/gtest.h>

#include "paper_fixtures.h"
#include "solap/index/bitmap_index.h"
#include "solap/index/build_index.h"

namespace solap {
namespace {

TEST(BitmapTest, SetGetAndCount) {
  Bitmap b(130);
  EXPECT_EQ(b.num_bits(), 130u);
  EXPECT_EQ(b.Count(), 0u);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Get(0));
  EXPECT_TRUE(b.Get(63));
  EXPECT_TRUE(b.Get(64));
  EXPECT_TRUE(b.Get(129));
  EXPECT_FALSE(b.Get(1));
  EXPECT_EQ(b.Count(), 4u);
}

TEST(BitmapTest, FromSidsAndToSidsRoundTrip) {
  std::vector<Sid> sids = {3, 7, 64, 100};
  Bitmap b = Bitmap::FromSids(sids, 128);
  EXPECT_EQ(b.ToSids(), sids);
  EXPECT_EQ(b.ByteSize(), 2 * sizeof(uint64_t));
}

TEST(BitmapTest, AndOrMatchSetSemantics) {
  Bitmap a = Bitmap::FromSids({1, 3, 5, 7}, 64);
  Bitmap b = Bitmap::FromSids({3, 4, 5, 8}, 64);
  Bitmap i = a;
  i.AndWith(b);
  EXPECT_EQ(i.ToSids(), (std::vector<Sid>{3, 5}));
  Bitmap u = a;
  u.OrWith(b);
  EXPECT_EQ(u.ToSids(), (std::vector<Sid>{1, 3, 4, 5, 7, 8}));
}

TEST(BitmapIndexTest, RoundTripsThroughInvertedIndex) {
  auto set = testing::Fig8RawGroups();
  auto reg = testing::Fig8Hierarchies();
  IndexShape shape;
  shape.positions.assign(2, LevelRef{"symbol", "symbol"});
  ScanStats stats;
  auto l2 = BuildIndex(&set->groups()[0], *set, reg.get(), shape, &stats);
  ASSERT_TRUE(l2.ok());

  BitmapIndex bi =
      BitmapIndex::FromInverted(**l2, set->groups()[0].num_sequences());
  EXPECT_EQ(bi.lists().size(), (*l2)->num_lists());
  auto back = bi.ToInverted(/*complete=*/true);
  EXPECT_TRUE(back->complete());
  for (const auto& [key, list] : (*l2)->lists()) {
    const SidList* got = back->Find(key);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, list);
  }
}

TEST(BitmapIndexTest, AndJoinEqualsListIntersection) {
  auto set = testing::Fig8RawGroups();
  auto reg = testing::Fig8Hierarchies();
  IndexShape shape;
  shape.positions.assign(2, LevelRef{"symbol", "symbol"});
  ScanStats stats;
  auto l2 = BuildIndex(&set->groups()[0], *set, reg.get(), shape, &stats);
  ASSERT_TRUE(l2.ok());
  size_t n = set->groups()[0].num_sequences();
  BitmapIndex bi = BitmapIndex::FromInverted(**l2, n);

  // Every pair of lists: bitmap AND == sorted intersection.
  for (const auto& [k1, list1] : (*l2)->lists()) {
    for (const auto& [k2, list2] : (*l2)->lists()) {
      Bitmap b = *bi.Find(k1);
      b.AndWith(*bi.Find(k2));
      EXPECT_EQ(b.ToSids(), IntersectSorted(list1, list2));
    }
  }
}

}  // namespace
}  // namespace solap
