// Tests for the query-language lexer and parser, including the paper's own
// query texts (Fig. 3 Q1 and Fig. 11 Q3).
#include <gtest/gtest.h>

#include "paper_fixtures.h"
#include "solap/engine/engine.h"
#include "solap/parser/lexer.h"
#include "solap/parser/parser.h"

namespace solap {
namespace {

TEST(LexerTest, TokenKinds) {
  auto r = Tokenize("SELECT COUNT(*) x1.action = \"in\" 3.5 42 <= !=");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const std::vector<Token>& t = *r;
  EXPECT_EQ(t[0].type, TokenType::kIdent);
  EXPECT_EQ(t[1].text, "COUNT");
  EXPECT_EQ(t[2].text, "(");
  EXPECT_EQ(t[3].text, "*");
  EXPECT_EQ(t[5].text, "x1");
  EXPECT_EQ(t[6].text, ".");
  EXPECT_EQ(t[7].text, "action");
  EXPECT_EQ(t[8].text, "=");
  EXPECT_EQ(t[9].type, TokenType::kString);
  EXPECT_EQ(t[9].literal.str(), "in");
  EXPECT_EQ(t[10].type, TokenType::kNumber);
  EXPECT_DOUBLE_EQ(t[10].literal.dbl(), 3.5);
  EXPECT_EQ(t[11].literal.int64(), 42);
  EXPECT_EQ(t[12].text, "<=");
  EXPECT_EQ(t[13].text, "!=");
  EXPECT_EQ(t.back().type, TokenType::kEnd);
}

TEST(LexerTest, HyphenatedIdentifiersAndDates) {
  auto r = Tokenize("card-id LEFT-MAXIMALITY 2007-10-01T00:01 2007-12-31");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].text, "card-id");
  EXPECT_EQ((*r)[1].text, "LEFT-MAXIMALITY");
  EXPECT_EQ((*r)[2].type, TokenType::kDateTime);
  EXPECT_EQ((*r)[2].literal.int64(), MakeTimestamp(2007, 10, 1, 0, 1));
  EXPECT_EQ((*r)[3].literal.int64(), MakeTimestamp(2007, 12, 31));
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
  EXPECT_FALSE(Tokenize("a # b").ok());
  EXPECT_FALSE(Tokenize("2007-13-99T99:99").ok());
}

// The paper's Q1 (Fig. 3), verbatim modulo ASCII quotes.
const char* kQ1 = R"(
  SELECT COUNT(*) FROM Event
  WHERE time >= 2007-10-01T00:00 AND time < 2008-01-01T00:00
  CLUSTER BY card-id AT individual, time AT day
  SEQUENCE BY time ASCENDING
  SEQUENCE GROUP BY card-id AT fare-group, time AT day
  CUBOID BY SUBSTRING (X, Y, Y, X)
    WITH X AS location AT station, Y AS location AT station
    LEFT-MAXIMALITY (x1, y1, y2, x2)
    WITH x1.action = "in" AND y1.action = "out" AND
         y2.action = "in" AND x2.action = "out"
)";

TEST(ParserTest, ParsesPaperQ1) {
  auto r = ParseQuery(kQ1);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const CuboidSpec& s = *r;
  EXPECT_EQ(s.agg, AggKind::kCount);
  ASSERT_NE(s.seq.where, nullptr);
  EXPECT_EQ(s.seq.cluster_by.size(), 2u);
  EXPECT_EQ(s.seq.cluster_by[0].attr, "card-id");
  EXPECT_EQ(s.seq.cluster_by[0].level, "individual");
  EXPECT_EQ(s.seq.sequence_by, "time");
  EXPECT_TRUE(s.seq.ascending);
  EXPECT_EQ(s.seq.group_by.size(), 2u);
  EXPECT_EQ(s.seq.group_by[0].level, "fare-group");
  EXPECT_EQ(s.kind, PatternKind::kSubstring);
  EXPECT_EQ(s.symbols, (std::vector<std::string>{"X", "Y", "Y", "X"}));
  ASSERT_EQ(s.dims.size(), 2u);
  EXPECT_EQ(s.dims[0].ref.ToString(), "location@station");
  EXPECT_EQ(s.restriction, CellRestriction::kLeftMaxMatchedGo);
  EXPECT_EQ(s.placeholders,
            (std::vector<std::string>{"x1", "y1", "y2", "x2"}));
  ASSERT_NE(s.predicate, nullptr);
  EXPECT_TRUE(s.predicate->UsesPlaceholders());
}

TEST(ParserTest, ParsedQ3ExecutesAgainstFig8) {
  const char* q3 = R"(
    SELECT COUNT(*) FROM Event
    CLUSTER BY card-id AT card-id
    SEQUENCE BY time ASCENDING
    CUBOID BY SUBSTRING (X, Y)
      WITH X AS location AT station, Y AS location AT station
      LEFT-MAXIMALITY (x1, y1)
      WITH x1.action = "in" AND y1.action = "out"
  )";
  auto spec = ParseQuery(q3);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto table = testing::Fig8Table();
  auto reg = testing::Fig8Hierarchies();
  SOlapEngine engine(table.get(), reg.get());
  auto r = engine.Execute(*spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_cells(), 6u);  // Figure 12
}

TEST(ParserTest, AggregatesAndSubsequenceAndIceberg) {
  const char* q = R"(
    SELECT SUM(amount) FROM Event
    CLUSTER BY card-id AT card-id
    SEQUENCE BY time DESCENDING
    CUBOID BY SUBSEQUENCE (A, B)
      WITH A AS location AT district, B AS location AT district
      ALL-MATCHED
    ICEBERG 5
  )";
  auto r = ParseQuery(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->agg, AggKind::kSum);
  EXPECT_EQ(r->measure, "amount");
  EXPECT_FALSE(r->seq.ascending);
  EXPECT_EQ(r->kind, PatternKind::kSubsequence);
  EXPECT_EQ(r->restriction, CellRestriction::kAllMatchedGo);
  EXPECT_TRUE(r->placeholders.empty());
  EXPECT_EQ(r->predicate, nullptr);
  ASSERT_TRUE(r->iceberg_min_count.has_value());
  EXPECT_EQ(*r->iceberg_min_count, 5);
}

TEST(ParserTest, LeftMaximalityDataVariant) {
  const char* q = R"(
    SELECT COUNT(*) FROM Event
    CLUSTER BY s AT s SEQUENCE BY t
    CUBOID BY SUBSTRING (X) WITH X AS p AT p LEFT-MAXIMALITY-DATA
  )";
  auto r = ParseQuery(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->restriction, CellRestriction::kLeftMaxDataGo);
}

TEST(ParserTest, ErrorDiagnostics) {
  // Missing FROM.
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) CLUSTER BY a AT a").ok());
  // Unknown aggregate.
  EXPECT_FALSE(ParseQuery("SELECT MEDIAN(x) FROM E CLUSTER BY a AT a "
                          "SEQUENCE BY t CUBOID BY SUBSTRING (X) WITH X AS "
                          "p AT p LEFT-MAXIMALITY")
                   .ok());
  // Missing restriction.
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) FROM E CLUSTER BY a AT a "
                          "SEQUENCE BY t CUBOID BY SUBSTRING (X) WITH X AS "
                          "p AT p")
                   .ok());
  // Placeholder arity mismatch.
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) FROM E CLUSTER BY a AT a "
                          "SEQUENCE BY t CUBOID BY SUBSTRING (X, Y) WITH "
                          "X AS p AT p, Y AS p AT p LEFT-MAXIMALITY (x1)")
                   .ok());
  // Undeclared symbol.
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) FROM E CLUSTER BY a AT a "
                          "SEQUENCE BY t CUBOID BY SUBSTRING (X, Y) WITH "
                          "X AS p AT p LEFT-MAXIMALITY")
                   .ok());
  // Trailing garbage.
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) FROM E CLUSTER BY a AT a "
                          "SEQUENCE BY t CUBOID BY SUBSTRING (X) WITH X AS "
                          "p AT p LEFT-MAXIMALITY banana")
                   .ok());
}

TEST(ParserTest, ExpressionParsing) {
  auto e = ParseExpression("NOT (a = 1 OR b != \"x\") AND c >= 2.5");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ((*e)->op(), ExprOp::kAnd);
  EXPECT_FALSE(ParseExpression("a = ").ok());
  EXPECT_FALSE(ParseExpression("a = 1 extra").ok());
  auto ph = ParseExpression("x1.action = \"in\"");
  ASSERT_TRUE(ph.ok());
  EXPECT_TRUE((*ph)->UsesPlaceholders());
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  const char* q = R"(
    select count(*) from Event
    cluster by card-id at card-id
    sequence by time ascending
    cuboid by substring (X) with X as location at station left-maximality
  )";
  auto r = ParseQuery(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->symbols.size(), 1u);
}

}  // namespace
}  // namespace solap
