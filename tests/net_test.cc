// Tests of the HTTP/1.1 network front-end: the incremental request parser
// (pipelining, limits, malformed input), the poll-based server (keep-alive
// reuse, pipelined batches, drain semantics), and the /query surface over a
// live QueryService (JSON cells, sessions, 429/503/504 backpressure
// mapping). Socket tests speak raw HTTP through a loopback client so the
// wire format itself is under test, not a client library's interpretation.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "solap/common/metrics.h"
#include "solap/engine/engine.h"
#include "solap/gen/synthetic.h"
#include "solap/net/http.h"
#include "solap/net/query_routes.h"
#include "solap/net/router.h"
#include "solap/net/server.h"
#include "solap/service/query_service.h"

namespace solap {
namespace net {
namespace {

using std::chrono::milliseconds;

// ---------------------------------------------------------------- HttpParser

HttpParser::Outcome FeedAll(HttpParser* p, const std::string& bytes,
                            HttpRequest* out) {
  p->Feed(bytes.data(), bytes.size());
  return p->Next(out);
}

TEST(HttpParserTest, ParsesPostWithHeadersAndBody) {
  HttpParser parser;
  HttpRequest req;
  ASSERT_EQ(FeedAll(&parser,
                    "POST /query?limit=5 HTTP/1.1\r\n"
                    "Host: localhost\r\n"
                    "X-Solap-Limit:  7 \r\n"
                    "Content-Length: 5\r\n"
                    "\r\n"
                    "hello",
                    &req),
            HttpParser::Outcome::kRequest);
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.target, "/query");
  EXPECT_EQ(req.query, "limit=5");
  EXPECT_EQ(req.version, "HTTP/1.1");
  EXPECT_EQ(req.body, "hello");
  ASSERT_NE(req.FindHeader("x-solap-limit"), nullptr);
  EXPECT_EQ(*req.FindHeader("x-solap-limit"), "7");  // OWS trimmed
  EXPECT_TRUE(req.keep_alive);
  EXPECT_EQ(parser.Next(&req), HttpParser::Outcome::kNeedMore);
}

TEST(HttpParserTest, AssemblesARequestFedByteByByte) {
  const std::string wire =
      "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  HttpParser parser;
  HttpRequest req;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    parser.Feed(&wire[i], 1);
    ASSERT_EQ(parser.Next(&req), HttpParser::Outcome::kNeedMore) << i;
  }
  parser.Feed(&wire[wire.size() - 1], 1);
  ASSERT_EQ(parser.Next(&req), HttpParser::Outcome::kRequest);
  EXPECT_EQ(req.target, "/healthz");
}

TEST(HttpParserTest, DrainsPipelinedRequestsInOrder) {
  HttpParser parser;
  const std::string wire =
      "POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc"
      "GET /b HTTP/1.1\r\n\r\n"
      "POST /c HTTP/1.1\r\nContent-Length: 2\r\n\r\nxy";
  parser.Feed(wire.data(), wire.size());
  HttpRequest req;
  ASSERT_EQ(parser.Next(&req), HttpParser::Outcome::kRequest);
  EXPECT_EQ(req.target, "/a");
  EXPECT_EQ(req.body, "abc");
  ASSERT_EQ(parser.Next(&req), HttpParser::Outcome::kRequest);
  EXPECT_EQ(req.target, "/b");
  ASSERT_EQ(parser.Next(&req), HttpParser::Outcome::kRequest);
  EXPECT_EQ(req.target, "/c");
  EXPECT_EQ(req.body, "xy");
  EXPECT_EQ(parser.Next(&req), HttpParser::Outcome::kNeedMore);
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(HttpParserTest, RejectsMalformedRequestLines) {
  const char* bad[] = {
      "GARBAGE\r\n\r\n",                        // one token
      "GET /x HTTP/1.1 extra\r\n\r\n",          // four tokens
      "GET /x HTTP/2.0\r\n\r\n",                // unsupported version
      "GET relative HTTP/1.1\r\n\r\n",          // not an absolute path
      "GET /x HTTP/1.1\r\nNo colon line\r\n\r\n",
  };
  for (const char* wire : bad) {
    HttpParser parser;
    HttpRequest req;
    ASSERT_EQ(FeedAll(&parser, wire, &req), HttpParser::Outcome::kError)
        << wire;
    EXPECT_EQ(parser.error_status(), 400) << wire;
    // Poisoned: further feeds keep reporting the error.
    EXPECT_EQ(FeedAll(&parser, "GET / HTTP/1.1\r\n\r\n", &req),
              HttpParser::Outcome::kError);
  }
}

TEST(HttpParserTest, RejectsTransferEncodingAsNotImplemented) {
  HttpParser parser;
  HttpRequest req;
  ASSERT_EQ(FeedAll(&parser,
                    "POST /q HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                    &req),
            HttpParser::Outcome::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpParserTest, RejectsOversizedBodyBeforeReadingIt) {
  HttpParserLimits limits;
  limits.max_body_bytes = 16;
  HttpParser parser(limits);
  HttpRequest req;
  ASSERT_EQ(FeedAll(&parser, "POST /q HTTP/1.1\r\nContent-Length: 17\r\n\r\n",
                    &req),
            HttpParser::Outcome::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTest, RejectsBadContentLength) {
  HttpParser parser;
  HttpRequest req;
  ASSERT_EQ(FeedAll(&parser, "POST /q HTTP/1.1\r\nContent-Length: 12x\r\n\r\n",
                    &req),
            HttpParser::Outcome::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, RejectsOversizedHead) {
  HttpParserLimits limits;
  limits.max_head_bytes = 64;
  HttpParser parser(limits);
  HttpRequest req;
  const std::string wire =
      "GET / HTTP/1.1\r\nX-Pad: " + std::string(128, 'a') + "\r\n\r\n";
  ASSERT_EQ(FeedAll(&parser, wire, &req), HttpParser::Outcome::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTest, KeepAliveFollowsVersionAndConnectionHeader) {
  struct Case {
    const char* wire;
    bool keep_alive;
  } cases[] = {
      {"GET / HTTP/1.1\r\n\r\n", true},
      {"GET / HTTP/1.0\r\n\r\n", false},
      {"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false},
      {"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true},
  };
  for (const Case& c : cases) {
    HttpParser parser;
    HttpRequest req;
    ASSERT_EQ(FeedAll(&parser, c.wire, &req), HttpParser::Outcome::kRequest)
        << c.wire;
    EXPECT_EQ(req.keep_alive, c.keep_alive) << c.wire;
  }
}

TEST(HttpSerializeTest, EmitsStatusLineHeadersAndFraming) {
  HttpResponse resp;
  resp.status = 429;
  resp.content_type = "application/json";
  resp.body = "{}\n";
  resp.keep_alive = false;
  resp.headers.emplace_back("Retry-After", "1");
  const std::string wire = SerializeResponse(resp);
  EXPECT_NE(wire.find("HTTP/1.1 429 Too Many Requests\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Retry-After: 1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 7), "\r\n\r\n{}\n");
}

// --------------------------------------------------------- loopback client

/// A raw-socket HTTP client: sends exactly the bytes it is told to, parses
/// responses with its own tiny reader so server framing bugs cannot hide.
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    timeval tv{10, 0};  // a hung test should fail, not wedge the suite
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  bool Send(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                         MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  struct Response {
    int status = 0;
    std::map<std::string, std::string> headers;  // lower-cased names
    std::string body;
  };

  /// Reads one complete response (Content-Length framing, which the server
  /// always uses). Returns false on EOF or timeout.
  bool ReadResponse(Response* out) {
    size_t head_end;
    while ((head_end = buf_.find("\r\n\r\n")) == std::string::npos) {
      if (!Fill()) return false;
    }
    const std::string head = buf_.substr(0, head_end);
    out->headers.clear();
    size_t line_end = head.find("\r\n");
    const std::string status_line = head.substr(0, line_end);
    if (status_line.size() < 12 || status_line.compare(0, 5, "HTTP/") != 0) {
      return false;
    }
    out->status = std::atoi(status_line.c_str() + 9);
    size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
    while (pos < head.size()) {
      size_t eol = head.find("\r\n", pos);
      if (eol == std::string::npos) eol = head.size();
      std::string line = head.substr(pos, eol - pos);
      pos = eol + 2;
      size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      std::string name = line.substr(0, colon);
      for (char& c : name) c = static_cast<char>(std::tolower(c));
      size_t vb = line.find_first_not_of(' ', colon + 1);
      out->headers[name] = vb == std::string::npos ? "" : line.substr(vb);
    }
    size_t body_len =
        static_cast<size_t>(std::atoll(out->headers["content-length"].c_str()));
    while (buf_.size() < head_end + 4 + body_len) {
      if (!Fill()) return false;
    }
    out->body = buf_.substr(head_end + 4, body_len);
    buf_.erase(0, head_end + 4 + body_len);
    return true;
  }

  /// True once the server has closed its end (EOF after pending data).
  bool ReadEof() {
    char c;
    ssize_t n = ::recv(fd_, &c, 1, 0);
    return n == 0;
  }

 private:
  bool Fill() {
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string buf_;
};

std::string SimpleRequest(const std::string& method, const std::string& target,
                          const std::string& body = "",
                          const std::string& extra_headers = "") {
  std::string req = method + " " + target + " HTTP/1.1\r\nHost: t\r\n" +
                    extra_headers;
  if (!body.empty() || method == "POST") {
    req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  req += "\r\n" + body;
  return req;
}

// ---------------------------------------------------------------- HttpServer

Router EchoRouter() {
  Router router;
  router.Handle("GET", "/ping", [](const HttpRequest&) {
    return TextResponse(200, "pong\n");
  });
  router.Handle("POST", "/echo", [](const HttpRequest& req) {
    return TextResponse(200, req.body);
  });
  return router;
}

HttpServerOptions SmallOptions() {
  HttpServerOptions opts;
  opts.num_workers = 2;
  return opts;
}

TEST(HttpServerTest, ServesOnAnEphemeralPort) {
  HttpServer server(EchoRouter(), SmallOptions());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(SimpleRequest("GET", "/ping")));
  TestClient::Response resp;
  ASSERT_TRUE(client.ReadResponse(&resp));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "pong\n");
  server.Stop();
}

TEST(HttpServerTest, KeepAliveServesManyRequestsOnOneConnection) {
  MetricsRegistry metrics;
  HttpServer server(EchoRouter(), SmallOptions(), &metrics);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.Send(SimpleRequest("POST", "/echo",
                                          "payload " + std::to_string(i))));
    TestClient::Response resp;
    ASSERT_TRUE(client.ReadResponse(&resp)) << i;
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body, "payload " + std::to_string(i));
  }
  EXPECT_EQ(metrics.counter("net_connections_accepted")->Value(), 1u);
  EXPECT_EQ(metrics.counter("net_requests")->Value(), 5u);
  server.Stop();
}

TEST(HttpServerTest, PipelinedBatchIsAnsweredInOrder) {
  HttpServer server(EchoRouter(), SmallOptions());
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(SimpleRequest("POST", "/echo", "first") +
                          SimpleRequest("POST", "/echo", "second") +
                          SimpleRequest("GET", "/ping")));
  TestClient::Response resp;
  ASSERT_TRUE(client.ReadResponse(&resp));
  EXPECT_EQ(resp.body, "first");
  ASSERT_TRUE(client.ReadResponse(&resp));
  EXPECT_EQ(resp.body, "second");
  ASSERT_TRUE(client.ReadResponse(&resp));
  EXPECT_EQ(resp.body, "pong\n");
  server.Stop();
}

TEST(HttpServerTest, MalformedRequestGets400AndTheConnectionCloses) {
  MetricsRegistry metrics;
  HttpServer server(EchoRouter(), SmallOptions(), &metrics);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("NONSENSE\r\n\r\n"));
  TestClient::Response resp;
  ASSERT_TRUE(client.ReadResponse(&resp));
  EXPECT_EQ(resp.status, 400);
  EXPECT_TRUE(client.ReadEof());
  EXPECT_EQ(metrics.counter("net_parse_errors")->Value(), 1u);
  server.Stop();
}

TEST(HttpServerTest, OversizedBodyGets413) {
  HttpServerOptions opts = SmallOptions();
  opts.limits.max_body_bytes = 32;
  HttpServer server(EchoRouter(), opts);
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(SimpleRequest("POST", "/echo",
                                        std::string(64, 'x'))));
  TestClient::Response resp;
  ASSERT_TRUE(client.ReadResponse(&resp));
  EXPECT_EQ(resp.status, 413);
  EXPECT_TRUE(client.ReadEof());
  server.Stop();
}

TEST(HttpServerTest, UnknownPathAndWrongMethodAreMapped) {
  HttpServer server(EchoRouter(), SmallOptions());
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(SimpleRequest("GET", "/nope")));
  TestClient::Response resp;
  ASSERT_TRUE(client.ReadResponse(&resp));
  EXPECT_EQ(resp.status, 404);
  ASSERT_TRUE(client.Send(SimpleRequest("PUT", "/ping")));
  ASSERT_TRUE(client.ReadResponse(&resp));
  EXPECT_EQ(resp.status, 405);
  EXPECT_EQ(resp.headers["allow"], "GET");
  server.Stop();
}

TEST(HttpServerTest, DrainRejectsNewWorkWhileInFlightRequestsFinish) {
  // /slow parks its handler on a gate so drain semantics are tested
  // deterministically: the request is provably in flight when Drain runs.
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;
  Router router = EchoRouter();
  router.Handle("GET", "/slow", [&](const HttpRequest&) {
    {
      std::unique_lock<std::mutex> lock(mu);
      entered = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    }
    return TextResponse(200, "slow done\n");
  });

  MetricsRegistry metrics;
  HttpServer server(std::move(router), SmallOptions(), &metrics);
  ASSERT_TRUE(server.Start().ok());

  TestClient in_flight(server.port());
  ASSERT_TRUE(in_flight.connected());
  ASSERT_TRUE(in_flight.Send(SimpleRequest("GET", "/slow")));
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }

  server.Drain();
  EXPECT_TRUE(server.draining());

  // A connection opened after Drain is accepted, but its first request
  // answers 503 and the server hangs up (with a lingering close, so the
  // 503 and this EOF are never RST'd away by the unread request).
  TestClient late(server.port());
  ASSERT_TRUE(late.connected());
  ASSERT_TRUE(late.Send(SimpleRequest("GET", "/ping")));
  TestClient::Response rejected;
  ASSERT_TRUE(late.ReadResponse(&rejected));
  EXPECT_EQ(rejected.status, 503);
  EXPECT_TRUE(late.ReadEof());

  // The in-flight request still completes normally.
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  TestClient::Response finished;
  ASSERT_TRUE(in_flight.ReadResponse(&finished));
  EXPECT_EQ(finished.status, 200);
  EXPECT_EQ(finished.body, "slow done\n");
  EXPECT_GE(metrics.counter("net_unavailable_503")->Value(), 1u);
  server.Stop();
}

TEST(HttpServerTest, StopWakesAParkedIdleConnection) {
  HttpServer server(EchoRouter(), SmallOptions());
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(SimpleRequest("GET", "/ping")));
  TestClient::Response resp;
  ASSERT_TRUE(client.ReadResponse(&resp));
  // The worker is now parked in poll() waiting for this connection's next
  // request; Stop must not hang on it.
  server.Stop();
  EXPECT_TRUE(client.ReadEof());
}

// ------------------------------------------------------- /query end-to-end

constexpr const char* kQuery =
    "SELECT COUNT(*) FROM S CLUSTER BY x AT x SEQUENCE BY t "
    "CUBOID BY SUBSTRING (X, Y) WITH X AS symbol AT symbol, "
    "Y AS symbol AT symbol LEFT-MAXIMALITY";

CuboidSpec XYSpec() {
  CuboidSpec spec;
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {SyntheticData::kAttr, "symbol"}, {}, ""},
               PatternDim{"Y", {SyntheticData::kAttr, "symbol"}, {}, ""}};
  return spec;
}

class NetQueryTest : public ::testing::Test {
 protected:
  NetQueryTest() : data_(GenerateSynthetic(Params())) {}

  static SyntheticParams Params() {
    SyntheticParams p;
    p.num_sequences = 20000;  // CB scan takes several ms: room to saturate
    p.num_symbols = 50;
    return p;
  }

  /// Builds engine + service (+ server over it) with the given knobs.
  void StartService(ServiceOptions sopts = {}) {
    engine_ = std::make_unique<SOlapEngine>(data_.groups,
                                            data_.hierarchies.get());
    service_ = std::make_unique<QueryService>(engine_.get(), sopts);
    HttpServerOptions hopts;
    hopts.num_workers = 2;
    QueryService* service = service_.get();
    server_ = std::make_unique<HttpServer>(
        BuildSolapRouter(service), hopts, &service->metrics(),
        [service] { service->BeginDrain(); });
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  SubmitOptions Cb() {
    SubmitOptions o;
    o.strategy = ExecStrategy::kCounterBased;
    return o;
  }

  SyntheticData data_;
  std::unique_ptr<SOlapEngine> engine_;
  std::unique_ptr<QueryService> service_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(NetQueryTest, QueryReturnsJsonCellsMatchingTheEngine) {
  StartService();
  SOlapEngine direct(data_.groups, data_.hierarchies.get());
  auto expected = direct.Execute(XYSpec(), ExecStrategy::kCounterBased);
  ASSERT_TRUE(expected.ok());

  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(SimpleRequest("POST", "/query", kQuery,
                                        "X-Solap-Limit: 2\r\n")));
  TestClient::Response resp;
  ASSERT_TRUE(client.ReadResponse(&resp));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.headers["content-type"], "application/json");
  EXPECT_NE(resp.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"agg\":\"COUNT\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"num_cells\":" +
                           std::to_string((*expected)->num_cells())),
            std::string::npos)
      << resp.body.substr(0, 200);
}

TEST_F(NetQueryTest, SessionLifecycleOverHttp) {
  StartService();
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());

  // Open a session with the initial query.
  ASSERT_TRUE(client.Send(SimpleRequest("POST", "/query", kQuery,
                                        "X-Solap-Session: new\r\n"
                                        "X-Solap-Limit: 1\r\n")));
  TestClient::Response opened;
  ASSERT_TRUE(client.ReadResponse(&opened));
  ASSERT_EQ(opened.status, 200);
  const std::string id = opened.headers["x-solap-session"];
  ASSERT_FALSE(id.empty());
  EXPECT_NE(opened.body.find("\"session\":" + id), std::string::npos);

  // Roll X up to the group level through the session.
  ASSERT_TRUE(client.Send(SimpleRequest(
      "POST", "/query", "rollup X group",
      "X-Solap-Session: " + id + "\r\nX-Solap-Limit: 1\r\n")));
  TestClient::Response rolled;
  ASSERT_TRUE(client.ReadResponse(&rolled));
  EXPECT_EQ(rolled.status, 200);
  EXPECT_NE(rolled.body.find("\"level\":\"group\""), std::string::npos)
      << rolled.body.substr(0, 200);

  // An empty body re-runs the session's current spec.
  ASSERT_TRUE(client.Send(SimpleRequest(
      "POST", "/query", "", "X-Solap-Session: " + id + "\r\n")));
  TestClient::Response rerun;
  ASSERT_TRUE(client.ReadResponse(&rerun));
  EXPECT_EQ(rerun.status, 200);

  // Unknown session ids surface as 404.
  ASSERT_TRUE(client.Send(SimpleRequest("POST", "/query", "detail",
                                        "X-Solap-Session: 999999\r\n")));
  TestClient::Response missing;
  ASSERT_TRUE(client.ReadResponse(&missing));
  EXPECT_EQ(missing.status, 404);
}

TEST_F(NetQueryTest, ParseErrorsAnswer400WithJsonDetail) {
  StartService();
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(SimpleRequest("POST", "/query", "SELEC garbage")));
  TestClient::Response resp;
  ASSERT_TRUE(client.ReadResponse(&resp));
  EXPECT_EQ(resp.status, 400);
  EXPECT_NE(resp.body.find("\"status\":\"error\""), std::string::npos);
  EXPECT_EQ(service_->metrics().counter("net_responses_4xx")->Value(), 1u);
}

TEST_F(NetQueryTest, QueueFullMapsToHttp429) {
  ServiceOptions sopts;
  sopts.num_threads = 1;
  sopts.max_queue_depth = 1;
  StartService(sopts);

  // The direct submission occupies the only admission slot for the several
  // ms its CB scan runs; the HTTP request arrives well inside that window.
  QueryService::Ticket blocker = service_->Submit(XYSpec(), Cb());
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(SimpleRequest("POST", "/query", kQuery,
                                        "X-Solap-Strategy: cb\r\n")));
  TestClient::Response resp;
  ASSERT_TRUE(client.ReadResponse(&resp));
  EXPECT_EQ(resp.status, 429);
  EXPECT_EQ(resp.headers["retry-after"], "1");
  EXPECT_EQ(service_->metrics().counter("net_shed_429")->Value(), 1u);
  EXPECT_TRUE(blocker.response.get().status.ok());
}

TEST_F(NetQueryTest, DeadlineExpiryMapsToHttp504) {
  StartService();
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(SimpleRequest("POST", "/query", kQuery,
                                        "X-Solap-Strategy: cb\r\n"
                                        "X-Solap-Deadline-Ms: 1\r\n")));
  TestClient::Response resp;
  ASSERT_TRUE(client.ReadResponse(&resp));
  EXPECT_EQ(resp.status, 504);  // 1ms deadline, multi-ms CB scan
}

TEST_F(NetQueryTest, DrainHookPutsTheServiceIntoLameDuck) {
  StartService();
  server_->Drain();
  // The hook told the service to stop admitting: direct submissions now
  // shed with the drain code, not the overload code.
  QueryResponse direct = service_->Run(XYSpec(), Cb());
  EXPECT_EQ(direct.status.code(), StatusCode::kUnavailable);
  // And HTTP clients see 503 at the door.
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(SimpleRequest("GET", "/healthz")));
  TestClient::Response resp;
  ASSERT_TRUE(client.ReadResponse(&resp));
  EXPECT_EQ(resp.status, 503);
}

TEST_F(NetQueryTest, MetricsEndpointExposesNetAndServiceSeries) {
  StartService();
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(SimpleRequest("POST", "/query", kQuery)));
  TestClient::Response query;
  ASSERT_TRUE(client.ReadResponse(&query));
  ASSERT_EQ(query.status, 200);
  ASSERT_TRUE(client.Send(SimpleRequest("GET", "/metrics")));
  TestClient::Response metrics;
  ASSERT_TRUE(client.ReadResponse(&metrics));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.headers["content-type"].find("text/plain"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("solap_net_requests 2"), std::string::npos);
  EXPECT_NE(metrics.body.find("solap_queries_submitted 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("solap_net_request_ms_bucket"),
            std::string::npos);
}

}  // namespace
}  // namespace net
}  // namespace solap
