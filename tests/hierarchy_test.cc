// Unit tests for concept hierarchies and calendar bucketing.
#include <gtest/gtest.h>

#include "solap/hierarchy/concept_hierarchy.h"

namespace solap {
namespace {

class HierarchyTest : public ::testing::Test {
 protected:
  HierarchyTest() : h_({"station", "district", "region"}) {
    (void)h_.SetParent(0, "Pentagon", "D10");
    (void)h_.SetParent(0, "Clarendon", "D10");
    (void)h_.SetParent(0, "Wheaton", "D20");
    (void)h_.SetParent(1, "D10", "South");
    (void)h_.SetParent(1, "D20", "North");
    dict_.GetOrAdd("Pentagon");   // 0
    dict_.GetOrAdd("Clarendon");  // 1
    dict_.GetOrAdd("Wheaton");    // 2
  }
  ConceptHierarchy h_;
  Dictionary dict_;
};

TEST_F(HierarchyTest, LevelIndexLookup) {
  EXPECT_EQ(h_.LevelIndex("station"), 0);
  EXPECT_EQ(h_.LevelIndex("district"), 1);
  EXPECT_EQ(h_.LevelIndex("region"), 2);
  EXPECT_EQ(h_.LevelIndex("galaxy"), -1);
  EXPECT_EQ(h_.num_levels(), 3u);
}

TEST_F(HierarchyTest, MapBaseCodeRollsUpThroughLevels) {
  Code d_pentagon = h_.MapBaseCode(dict_, 1, 0);
  Code d_clarendon = h_.MapBaseCode(dict_, 1, 1);
  Code d_wheaton = h_.MapBaseCode(dict_, 1, 2);
  EXPECT_EQ(d_pentagon, d_clarendon);  // both D10
  EXPECT_NE(d_pentagon, d_wheaton);
  EXPECT_EQ(h_.LabelOf(dict_, 1, d_pentagon), "D10");
  Code r = h_.MapBaseCode(dict_, 2, 0);
  EXPECT_EQ(h_.LabelOf(dict_, 2, r), "South");
  // Level 0 is the identity.
  EXPECT_EQ(h_.MapBaseCode(dict_, 0, 2), 2u);
}

TEST_F(HierarchyTest, UnmappedValuesRollUpToThemselves) {
  Code newcode = dict_.GetOrAdd("Mystery");
  Code mapped = h_.MapBaseCode(dict_, 1, newcode);
  EXPECT_EQ(h_.LabelOf(dict_, 1, mapped), "Mystery");
}

TEST_F(HierarchyTest, LazyExtensionOnDictionaryGrowth) {
  Code d1 = h_.MapBaseCode(dict_, 1, 0);
  Code glenmont = dict_.GetOrAdd("Glenmont");
  (void)h_.SetParent(0, "Glenmont", "D20");
  // SetParent invalidates the compiled map; remapping still works.
  Code d_glenmont = h_.MapBaseCode(dict_, 1, glenmont);
  EXPECT_EQ(h_.LabelOf(dict_, 1, d_glenmont), "D20");
  EXPECT_EQ(h_.LabelOf(dict_, 1, h_.MapBaseCode(dict_, 1, 0)), "D10");
  (void)d1;
}

TEST_F(HierarchyTest, BaseCodesOfInvertsTheMapping) {
  Code d10 = h_.MapBaseCode(dict_, 1, 0);
  (void)h_.MapBaseCode(dict_, 1, 2);  // populate the rest
  std::vector<Code> bases = h_.BaseCodesOf(1, d10);
  EXPECT_EQ(bases.size(), 2u);  // Pentagon, Clarendon
}

TEST_F(HierarchyTest, LevelToLevelTable) {
  std::vector<Code> table = h_.LevelToLevel(dict_, 1, 2);
  Code d10 = h_.MapBaseCode(dict_, 1, 0);
  Code d20 = h_.MapBaseCode(dict_, 1, 2);
  ASSERT_GT(table.size(), std::max(d10, d20));
  EXPECT_EQ(h_.LabelOf(dict_, 2, table[d10]), "South");
  EXPECT_EQ(h_.LabelOf(dict_, 2, table[d20]), "North");
}

TEST_F(HierarchyTest, SetParentRangeChecks) {
  EXPECT_FALSE(h_.SetParent(2, "South", "Earth").ok());
  EXPECT_FALSE(h_.SetParent(-1, "x", "y").ok());
}

TEST(CalendarTest, DayWeekMonthBuckets) {
  int64_t t = MakeTimestamp(2007, 10, 1, 13, 45, 0);
  Code day = CalendarBucket(t, CalendarLevel::kDay);
  EXPECT_EQ(CalendarLabel(day, CalendarLevel::kDay), "2007-10-01");
  // Same bucket for any time that day; different next day.
  EXPECT_EQ(CalendarBucket(MakeTimestamp(2007, 10, 1), CalendarLevel::kDay),
            day);
  EXPECT_EQ(CalendarBucket(MakeTimestamp(2007, 10, 2), CalendarLevel::kDay),
            day + 1);
  // 2007-10-01 is a Monday: it starts a new week bucket.
  Code w_mon = CalendarBucket(MakeTimestamp(2007, 10, 1), CalendarLevel::kWeek);
  Code w_sun = CalendarBucket(MakeTimestamp(2007, 9, 30), CalendarLevel::kWeek);
  Code w_next_sun =
      CalendarBucket(MakeTimestamp(2007, 10, 7), CalendarLevel::kWeek);
  EXPECT_EQ(w_mon + 0, w_next_sun);  // Mon..Sun share a week
  EXPECT_EQ(w_sun + 1, w_mon);
  Code m = CalendarBucket(t, CalendarLevel::kMonth);
  EXPECT_EQ(CalendarLabel(m, CalendarLevel::kMonth), "2007-10");
  EXPECT_EQ(
      CalendarBucket(MakeTimestamp(2007, 11, 1), CalendarLevel::kMonth),
      m + 1);
}

TEST(CalendarTest, MakeTimestampRoundTrips) {
  int64_t t = MakeTimestamp(1970, 1, 1);
  EXPECT_EQ(t, 0);
  EXPECT_EQ(MakeTimestamp(1970, 1, 2), 86400);
  EXPECT_EQ(MakeTimestamp(2000, 2, 29) + 86400, MakeTimestamp(2000, 3, 1));
  EXPECT_EQ(MakeTimestamp(1969, 12, 31), -86400);
}

TEST(CalendarTest, ParseCalendarLevel) {
  ASSERT_TRUE(ParseCalendarLevel("day", "time").ok());
  ASSERT_TRUE(ParseCalendarLevel("time", "time").ok());
  ASSERT_TRUE(ParseCalendarLevel("request-time", "request-time").ok());
  EXPECT_FALSE(ParseCalendarLevel("fortnight", "time").ok());
}

TEST(HierarchyRegistryTest, RegisterAndFind) {
  HierarchyRegistry reg;
  EXPECT_EQ(reg.Find("location"), nullptr);
  auto h = std::make_shared<ConceptHierarchy>(
      std::vector<std::string>{"a", "b"});
  reg.Register("location", h);
  EXPECT_EQ(reg.Find("location"), h.get());
}

}  // namespace
}  // namespace solap
