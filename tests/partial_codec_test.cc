// Tests for the shard wire codec (cube/partial_codec.h) and the hardened
// JSON layer beneath it (net/json.h): randomized round-trip fuzzing with
// BIT-identical floating-point state, encode determinism, CRC/envelope
// corruption rejection, spec round-trips, and the NaN/Inf + control-
// character encode rules.
#include "solap/cube/partial_codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "solap/net/json.h"
#include "solap/parser/parser.h"

namespace solap {
namespace {

uint64_t Bits(double d) {
  uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

/// Cell-by-cell BIT equality (not epsilon): the wire must transport the
/// exact IEEE-754 state or shard merges drift from the in-process path.
void ExpectBitIdentical(const SCuboid& a, const SCuboid& b) {
  ASSERT_EQ(a.num_cells(), b.num_cells());
  ASSERT_EQ(a.agg(), b.agg());
  ASSERT_EQ(a.dims().size(), b.dims().size());
  for (size_t d = 0; d < a.dims().size(); ++d) {
    EXPECT_EQ(a.dims()[d].name, b.dims()[d].name);
    EXPECT_EQ(a.dims()[d].ref.attr, b.dims()[d].ref.attr);
    EXPECT_EQ(a.dims()[d].ref.level, b.dims()[d].ref.level);
    EXPECT_EQ(a.dims()[d].is_pattern, b.dims()[d].is_pattern);
  }
  for (const auto& [key, va] : a.cells()) {
    const auto it = b.cells().find(key);
    ASSERT_NE(it, b.cells().end());
    EXPECT_EQ(va.count, it->second.count);
    EXPECT_EQ(Bits(va.sum), Bits(it->second.sum));
    EXPECT_EQ(Bits(va.min), Bits(it->second.min));
    EXPECT_EQ(Bits(va.max), Bits(it->second.max));
  }
  ASSERT_EQ(a.labels().size(), b.labels().size());
  for (size_t d = 0; d < a.labels().size(); ++d) {
    EXPECT_EQ(a.labels()[d], b.labels()[d]);
  }
}

/// A randomized cuboid: random shape, adversarial doubles (subnormals,
/// huge magnitudes, negative zero), control characters in labels.
SCuboid RandomCuboid(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> dim_count(1, 4);
  std::uniform_int_distribution<int> cell_count(0, 40);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<Code> code(0, 9);
  std::uniform_int_distribution<int> agg_pick(0, 4);
  std::uniform_real_distribution<double> uniform(-1e6, 1e6);

  const int nd = dim_count(rng);
  std::vector<DimDescriptor> dims;
  for (int d = 0; d < nd; ++d) {
    DimDescriptor desc;
    desc.is_pattern = coin(rng) == 1;
    desc.name = desc.is_pattern ? std::string(1, static_cast<char>('X' + d))
                                : "attr" + std::to_string(d);
    desc.ref = LevelRef{"attr" + std::to_string(d), "base"};
    dims.push_back(desc);
  }
  SCuboid cuboid(dims, static_cast<AggKind>(agg_pick(rng)));

  auto adversarial = [&]() -> double {
    switch (std::uniform_int_distribution<int>(0, 5)(rng)) {
      case 0:
        return std::numeric_limits<double>::denorm_min();
      case 1:
        return -0.0;
      case 2:
        return 1e308;
      case 3:
        return -1.0 / 3.0;
      default:
        return uniform(rng);
    }
  };

  const int nc = cell_count(rng);
  for (int c = 0; c < nc; ++c) {
    CellKey key;
    for (int d = 0; d < nd; ++d) key.push_back(code(rng));
    cuboid.Add(key, adversarial());
    if (coin(rng) == 1) cuboid.Add(key, adversarial());
    for (int d = 0; d < nd; ++d) {
      if (coin(rng) == 1) {
        cuboid.SetLabel(static_cast<size_t>(d), key[d],
                        "label\t\"" + std::to_string(key[d]) + "\"\x01");
      }
    }
  }
  return cuboid;
}

ScanStats RandomStats(std::mt19937_64& rng) {
  std::uniform_int_distribution<uint64_t> v(0, 1u << 20);
  ScanStats s;
  s.sequences_scanned = v(rng);
  s.lists_built = v(rng);
  s.list_intersections = v(rng);
  s.index_bytes_built = v(rng);
  s.repository_hits = v(rng);
  s.shard_partials = v(rng);
  s.shard_rpc_retries = v(rng);
  s.partial_answers = v(rng);
  return s;
}

TEST(PartialCodecTest, FuzzRoundTripIsBitIdentical) {
  std::mt19937_64 rng(20260809);
  for (int trial = 0; trial < 200; ++trial) {
    SCuboid original = RandomCuboid(rng);
    ScanStats stats = RandomStats(rng);
    const std::string wire = EncodeShardPartial(original, stats);
    auto decoded = DecodeShardPartial(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString() << "\n" << wire;
    ExpectBitIdentical(original, *decoded->cuboid);
    EXPECT_EQ(stats.sequences_scanned, decoded->stats.sequences_scanned);
    EXPECT_EQ(stats.lists_built, decoded->stats.lists_built);
    EXPECT_EQ(stats.index_bytes_built, decoded->stats.index_bytes_built);
    EXPECT_EQ(stats.shard_rpc_retries, decoded->stats.shard_rpc_retries);
    EXPECT_EQ(stats.partial_answers, decoded->stats.partial_answers);
  }
}

TEST(PartialCodecTest, EmptyCuboidKeepsInfiniteNeutralElements) {
  // An untouched MIN/MAX cell holds ±infinity — exactly the values a
  // decimal JSON number cannot carry. The hex-bits transport must.
  SCuboid cuboid({DimDescriptor{"X", LevelRef{"a", "base"}, true}},
                 AggKind::kMin);
  CellKey key;
  key.push_back(3);
  CellValue inf_cell;  // count 0, min=+inf, max=-inf
  cuboid.MergeCell(key, inf_cell);
  const std::string wire = EncodeShardPartial(cuboid, ScanStats{});
  auto decoded = DecodeShardPartial(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const CellValue got = decoded->cuboid->CellAt(key);
  EXPECT_EQ(Bits(got.min), Bits(std::numeric_limits<double>::infinity()));
  EXPECT_EQ(Bits(got.max), Bits(-std::numeric_limits<double>::infinity()));
  EXPECT_EQ(got.count, 0);
}

TEST(PartialCodecTest, EncodeIsInsertionOrderIndependent) {
  auto build = [](bool reversed) {
    SCuboid c({DimDescriptor{"s", LevelRef{"s", "base"}, false}},
              AggKind::kSum);
    std::vector<std::pair<Code, double>> rows = {
        {1, 2.5}, {7, -3.25}, {4, 0.5}};
    if (reversed) std::reverse(rows.begin(), rows.end());
    for (const auto& [code, v] : rows) {
      CellKey k;
      k.push_back(code);
      c.Add(k, v);
      c.SetLabel(0, code, "s" + std::to_string(code));
    }
    return EncodeShardPartial(c, ScanStats{});
  };
  EXPECT_EQ(build(false), build(true))
      << "wire bytes must be a pure function of content";
}

TEST(PartialCodecTest, RejectsEverySingleByteCorruptionOfPayload) {
  SCuboid cuboid({DimDescriptor{"X", LevelRef{"a", "base"}, true}},
                 AggKind::kSum);
  CellKey key;
  key.push_back(1);
  cuboid.Add(key, 1.0);
  const std::string wire = EncodeShardPartial(cuboid, ScanStats{});
  const size_t payload_at = wire.find("\"payload\":");
  ASSERT_NE(payload_at, std::string::npos);

  int rejected = 0, corrupted = 0;
  for (size_t i = payload_at; i < wire.size(); ++i) {
    std::string bad = wire;
    bad[i] ^= 0x04;  // flip one bit inside the CRC-protected payload
    if (bad == wire) continue;
    ++corrupted;
    if (!DecodeShardPartial(bad).ok()) ++rejected;
  }
  EXPECT_GT(corrupted, 0);
  EXPECT_EQ(rejected, corrupted)
      << "every payload corruption must be caught (CRC or structure)";
}

TEST(PartialCodecTest, RejectsVersionMismatchAndTruncation) {
  SCuboid cuboid({DimDescriptor{"X", LevelRef{"a", "base"}, true}},
                 AggKind::kCount);
  const std::string wire = EncodeShardPartial(cuboid, ScanStats{});
  ASSERT_EQ(wire.find("{\"v\":1,"), 0u);

  std::string wrong_version = wire;
  wrong_version[5] = '9';
  EXPECT_FALSE(DecodeShardPartial(wrong_version).ok());

  for (size_t cut : {wire.size() - 1, wire.size() / 2, size_t{3}}) {
    EXPECT_FALSE(DecodeShardPartial(wire.substr(0, cut)).ok())
        << "truncated at " << cut;
  }
  EXPECT_FALSE(DecodeShardPartial(wire + " ").ok()) << "trailing garbage";
  EXPECT_FALSE(DecodeShardPartial("").ok());
}

TEST(PartialCodecTest, SpecRoundTripsThroughWireText) {
  CuboidSpec spec;
  spec.agg = AggKind::kAvg;
  spec.measure = "amount";
  auto where = ParseExpression("type = 'park' AND NOT (fee > 10)");
  ASSERT_TRUE(where.ok()) << where.status().ToString();
  spec.seq.where = *where;
  spec.seq.cluster_by = {LevelRef{"card", "base"}, LevelRef{"day", "base"}};
  spec.seq.sequence_by = "ts";
  spec.seq.ascending = false;
  spec.seq.group_by = {LevelRef{"city", "region"}};
  spec.global_slices = {{LevelRef{"city", "region"}, {"north", "south"}}};
  spec.kind = PatternKind::kSubsequence;
  spec.symbols = {"X", "Y", "X"};
  spec.dims = {{"X", LevelRef{"station", "base"}, {"a", "b"}, "line"},
               {"Y", LevelRef{"station", "line"}, {}, ""}};
  spec.restriction = CellRestriction::kAllMatchedGo;
  spec.placeholders = {"x1", "y1", "x2"};
  auto pred = ParseExpression("x1.fee < y1.fee");
  ASSERT_TRUE(pred.ok()) << pred.status().ToString();
  spec.predicate = *pred;
  spec.iceberg_min_count = 7;

  const std::string text = EncodeCuboidSpec(spec);
  auto decoded = DecodeCuboidSpecText(text);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString() << "\n" << text;
  // Canonical strings capture every semantic field; equal canonicals mean
  // the decoded spec produces the same cuboid (and cache key).
  EXPECT_EQ(spec.CanonicalString(), decoded->CanonicalString());
  // And the codec must be stable: re-encoding reproduces the same text.
  EXPECT_EQ(text, EncodeCuboidSpec(*decoded));
}

TEST(PartialCodecTest, RegexSpecRoundTrips) {
  CuboidSpec spec;
  spec.agg = AggKind::kCount;
  spec.regex = "X ( . )* X";
  spec.dims = {{"X", LevelRef{"station", "base"}, {}, ""}};
  spec.restriction = CellRestriction::kLeftMaxMatchedGo;
  const std::string text = EncodeCuboidSpec(spec);
  auto decoded = DecodeCuboidSpecText(text);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(spec.CanonicalString(), decoded->CanonicalString());
}

// -- net/json hardening (satellite 2) ---------------------------------------

TEST(JsonHardeningTest, FiniteNumberRejectsNaNAndInf) {
  EXPECT_FALSE(net::JsonFiniteNumber(std::nan("")).ok());
  EXPECT_FALSE(
      net::JsonFiniteNumber(std::numeric_limits<double>::infinity()).ok());
  EXPECT_FALSE(
      net::JsonFiniteNumber(-std::numeric_limits<double>::infinity()).ok());
  auto ok = net::JsonFiniteNumber(-0.5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, "-0.5");
}

TEST(JsonHardeningTest, EscapesAllControlCharacters) {
  for (int c = 0; c < 0x20; ++c) {
    const std::string s(1, static_cast<char>(c));
    const std::string encoded = net::JsonString(s);
    for (char ch : encoded) {
      EXPECT_GE(static_cast<unsigned char>(ch), 0x20u)
          << "raw control byte " << c << " leaked into " << encoded;
    }
    auto parsed = net::JsonParse(encoded);
    ASSERT_TRUE(parsed.ok()) << "control byte " << c;
    EXPECT_EQ(parsed->s, s) << "control byte " << c;
  }
}

TEST(JsonHardeningTest, StrictParseRejectsMalformedInput) {
  EXPECT_FALSE(net::JsonParse("{\"a\":1,\"a\":2}").ok()) << "duplicate key";
  EXPECT_FALSE(net::JsonParse("{\"a\":1} x").ok()) << "trailing garbage";
  EXPECT_FALSE(net::JsonParse("01").ok()) << "leading zero";
  EXPECT_FALSE(net::JsonParse("[1,]").ok()) << "trailing comma";
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_FALSE(net::JsonParse(deep).ok()) << "depth bomb";
}

}  // namespace
}  // namespace solap
