// Unit tests for the posting-list intersection kernels (index/intersect.h):
// every kernel must agree with the scalar linear merge on empty, disjoint,
// subset, interleaved and skewed inputs, and the cost heuristic must cut
// over at its documented thresholds.
#include "solap/index/intersect.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "solap/index/bitmap.h"

namespace solap {
namespace {

std::vector<Sid> Reference(const std::vector<Sid>& a,
                           const std::vector<Sid>& b) {
  std::vector<Sid> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

// Runs every kernel (linear, galloping, bitmap in both probe directions,
// adaptive) on (a, b) and checks each against std::set_intersection.
void CheckAllKernels(const std::vector<Sid>& a, const std::vector<Sid>& b,
                     size_t universe) {
  const std::vector<Sid> expect = Reference(a, b);
  std::vector<Sid> out;

  IntersectLinear(a, b, out);
  EXPECT_EQ(out, expect) << "linear";
  IntersectLinear(b, a, out);
  EXPECT_EQ(out, expect) << "linear swapped";

  IntersectGalloping(a, b, out);
  EXPECT_EQ(out, expect) << "galloping";
  IntersectGalloping(b, a, out);
  EXPECT_EQ(out, expect) << "galloping swapped";

  Bitmap bm_b = Bitmap::FromSids(b, universe);
  IntersectBitmap(a, bm_b, out);
  EXPECT_EQ(out, expect) << "bitmap(b)";
  Bitmap bm_a = Bitmap::FromSids(a, universe);
  IntersectBitmap(b, bm_a, out);
  EXPECT_EQ(out, expect) << "bitmap(a)";

  IntersectAdaptive(a, b, nullptr, out);
  EXPECT_EQ(out, expect) << "adaptive";
  IntersectAdaptive(a, b, &bm_b, out);
  EXPECT_EQ(out, expect) << "adaptive+bitmap";
}

TEST(IntersectKernels, EmptyInputs) {
  CheckAllKernels({}, {}, 16);
  CheckAllKernels({}, {1, 5, 9}, 16);
  CheckAllKernels({3, 4}, {}, 16);
}

TEST(IntersectKernels, Disjoint) {
  CheckAllKernels({0, 2, 4, 6}, {1, 3, 5, 7}, 16);
  CheckAllKernels({0, 1, 2}, {10, 11, 12}, 16);
}

TEST(IntersectKernels, SubsetAndEqual) {
  CheckAllKernels({2, 5, 8}, {0, 2, 3, 5, 7, 8, 9}, 16);
  CheckAllKernels({1, 2, 3}, {1, 2, 3}, 16);
  CheckAllKernels({7}, {0, 1, 2, 3, 4, 5, 6, 7}, 16);
}

TEST(IntersectKernels, SkewedPair) {
  // Heavily skewed sizes — the galloping sweet spot; also exercises the
  // exponential probe overshooting the end of the large list.
  std::vector<Sid> large;
  for (Sid s = 0; s < 4096; s += 3) large.push_back(s);
  std::vector<Sid> small = {0, 3, 4, 3000, 4093, 4095};
  CheckAllKernels(small, large, 4096);
}

TEST(IntersectKernels, RandomizedAgainstReference) {
  std::mt19937 rng(20080612);  // SIGMOD'08 vintage
  for (int trial = 0; trial < 200; ++trial) {
    const size_t universe = 1 + rng() % 2000;
    auto make = [&](double density) {
      std::vector<Sid> v;
      for (Sid s = 0; s < universe; ++s) {
        if (std::uniform_real_distribution<>(0, 1)(rng) < density) {
          v.push_back(s);
        }
      }
      return v;
    };
    const double da = std::uniform_real_distribution<>(0.001, 0.9)(rng);
    const double db = std::uniform_real_distribution<>(0.001, 0.9)(rng);
    CheckAllKernels(make(da), make(db), universe);
  }
}

TEST(IntersectKernels, OutputBufferIsReused) {
  std::vector<Sid> out = {99, 98, 97};  // stale content must be discarded
  IntersectLinear(std::vector<Sid>{1, 2}, std::vector<Sid>{2, 3}, out);
  EXPECT_EQ(out, (std::vector<Sid>{2}));
  IntersectGalloping(std::vector<Sid>{1, 2}, std::vector<Sid>{}, out);
  EXPECT_TRUE(out.empty());
}

TEST(IntersectHeuristic, PicksLinearForBalancedPairs) {
  EXPECT_EQ(ChooseIntersectKernel(100, 100, false),
            IntersectKernel::kLinear);
  EXPECT_EQ(ChooseIntersectKernel(100, 100 * kGallopSizeRatio - 1, false),
            IntersectKernel::kLinear);
}

TEST(IntersectHeuristic, PicksGallopingPastTheSizeRatio) {
  EXPECT_EQ(ChooseIntersectKernel(100, 100 * kGallopSizeRatio, false),
            IntersectKernel::kGalloping);
  EXPECT_EQ(ChooseIntersectKernel(100 * kGallopSizeRatio, 100, false),
            IntersectKernel::kGalloping);
  // An empty side short-circuits to galloping (returns immediately).
  EXPECT_EQ(ChooseIntersectKernel(0, 50, false),
            IntersectKernel::kGalloping);
}

TEST(IntersectHeuristic, BitmapWinsWhenAvailable) {
  EXPECT_EQ(ChooseIntersectKernel(100, 100, true), IntersectKernel::kBitmap);
  EXPECT_EQ(ChooseIntersectKernel(1, 100000, true),
            IntersectKernel::kBitmap);
}

}  // namespace
}  // namespace solap
