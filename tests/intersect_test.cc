// Unit tests for the posting-list intersection kernels (index/intersect.h):
// every kernel must agree with the scalar linear merge on empty, disjoint,
// subset, interleaved and skewed inputs, and the cost heuristic must cut
// over at its documented thresholds.
#include "solap/index/intersect.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "solap/index/bitmap.h"

namespace solap {
namespace {

std::vector<Sid> Reference(const std::vector<Sid>& a,
                           const std::vector<Sid>& b) {
  std::vector<Sid> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

// Runs every kernel (linear, galloping, bitmap in both probe directions,
// adaptive) on (a, b) and checks each against std::set_intersection.
void CheckAllKernels(const std::vector<Sid>& a, const std::vector<Sid>& b,
                     size_t universe) {
  const std::vector<Sid> expect = Reference(a, b);
  std::vector<Sid> out;

  IntersectLinear(a, b, out);
  EXPECT_EQ(out, expect) << "linear";
  IntersectLinear(b, a, out);
  EXPECT_EQ(out, expect) << "linear swapped";

  IntersectLinearSimd(a, b, out);
  EXPECT_EQ(out, expect) << "linear simd";
  IntersectLinearSimd(b, a, out);
  EXPECT_EQ(out, expect) << "linear simd swapped";

  IntersectGalloping(a, b, out);
  EXPECT_EQ(out, expect) << "galloping";
  IntersectGalloping(b, a, out);
  EXPECT_EQ(out, expect) << "galloping swapped";

  IntersectGallopingSimd(a, b, out);
  EXPECT_EQ(out, expect) << "galloping simd";
  IntersectGallopingSimd(b, a, out);
  EXPECT_EQ(out, expect) << "galloping simd swapped";

  Bitmap bm_b = Bitmap::FromSids(b, universe);
  IntersectBitmap(a, bm_b, out);
  EXPECT_EQ(out, expect) << "bitmap(b)";
  Bitmap bm_a = Bitmap::FromSids(a, universe);
  IntersectBitmap(b, bm_a, out);
  EXPECT_EQ(out, expect) << "bitmap(a)";

  IntersectAdaptive(a, b, nullptr, out);
  EXPECT_EQ(out, expect) << "adaptive";
  IntersectAdaptive(a, b, &bm_b, out);
  EXPECT_EQ(out, expect) << "adaptive+bitmap";

  // Density-aware adaptive with a scratch encoding, twice: the second call
  // must hit the cached encoding and still be correct.
  IntersectScratch scratch;
  IntersectAdaptive(a, b, universe, nullptr, &scratch, out);
  EXPECT_EQ(out, expect) << "adaptive+scratch";
  IntersectAdaptive(a, b, universe, nullptr, &scratch, out);
  EXPECT_EQ(out, expect) << "adaptive+scratch reuse";
}

TEST(IntersectKernels, EmptyInputs) {
  CheckAllKernels({}, {}, 16);
  CheckAllKernels({}, {1, 5, 9}, 16);
  CheckAllKernels({3, 4}, {}, 16);
}

TEST(IntersectKernels, Disjoint) {
  CheckAllKernels({0, 2, 4, 6}, {1, 3, 5, 7}, 16);
  CheckAllKernels({0, 1, 2}, {10, 11, 12}, 16);
}

TEST(IntersectKernels, SubsetAndEqual) {
  CheckAllKernels({2, 5, 8}, {0, 2, 3, 5, 7, 8, 9}, 16);
  CheckAllKernels({1, 2, 3}, {1, 2, 3}, 16);
  CheckAllKernels({7}, {0, 1, 2, 3, 4, 5, 6, 7}, 16);
}

TEST(IntersectKernels, SkewedPair) {
  // Heavily skewed sizes — the galloping sweet spot; also exercises the
  // exponential probe overshooting the end of the large list.
  std::vector<Sid> large;
  for (Sid s = 0; s < 4096; s += 3) large.push_back(s);
  std::vector<Sid> small = {0, 3, 4, 3000, 4093, 4095};
  CheckAllKernels(small, large, 4096);
}

TEST(IntersectKernels, RandomizedAgainstReference) {
  std::mt19937 rng(20080612);  // SIGMOD'08 vintage
  for (int trial = 0; trial < 200; ++trial) {
    const size_t universe = 1 + rng() % 2000;
    auto make = [&](double density) {
      std::vector<Sid> v;
      for (Sid s = 0; s < universe; ++s) {
        if (std::uniform_real_distribution<>(0, 1)(rng) < density) {
          v.push_back(s);
        }
      }
      return v;
    };
    const double da = std::uniform_real_distribution<>(0.001, 0.9)(rng);
    const double db = std::uniform_real_distribution<>(0.001, 0.9)(rng);
    CheckAllKernels(make(da), make(db), universe);
  }
}

TEST(IntersectKernels, OutputBufferIsReused) {
  std::vector<Sid> out = {99, 98, 97};  // stale content must be discarded
  IntersectLinear(std::vector<Sid>{1, 2}, std::vector<Sid>{2, 3}, out);
  EXPECT_EQ(out, (std::vector<Sid>{2}));
  IntersectGalloping(std::vector<Sid>{1, 2}, std::vector<Sid>{}, out);
  EXPECT_TRUE(out.empty());
}

TEST(IntersectHeuristic, PicksLinearForBalancedPairs) {
  // universe = 0 disables the density term.
  EXPECT_EQ(ChooseIntersectKernel(100, 100, 0, false),
            IntersectKernel::kLinear);
  EXPECT_EQ(ChooseIntersectKernel(100, 100 * kGallopSizeRatio - 1, 0, false),
            IntersectKernel::kLinear);
}

TEST(IntersectHeuristic, SizeRatioIsMultiplicativeNotTruncating) {
  // The boundary must be exact: small * ratio <= large. The old integer
  // division (large / small >= ratio) truncated the quotient, so 1599/100
  // and 1600/100 both landed on the same side only by accident of the
  // operands — e.g. 95 vs 1599 (ratio 16.8) truncated to 16 and galloped,
  // while 100 vs 1599 (ratio 15.99) must stay linear.
  EXPECT_EQ(ChooseIntersectKernel(100, 1599, 0, false),
            IntersectKernel::kLinear);
  EXPECT_EQ(ChooseIntersectKernel(100, 1600, 0, false),
            IntersectKernel::kGalloping);
  EXPECT_EQ(ChooseIntersectKernel(95, 1599, 0, false),
            IntersectKernel::kGalloping);
}

TEST(IntersectHeuristic, PicksGallopingPastTheSizeRatio) {
  EXPECT_EQ(ChooseIntersectKernel(100, 100 * kGallopSizeRatio, 0, false),
            IntersectKernel::kGalloping);
  EXPECT_EQ(ChooseIntersectKernel(100 * kGallopSizeRatio, 100, 0, false),
            IntersectKernel::kGalloping);
  // An empty side short-circuits to galloping (returns immediately).
  EXPECT_EQ(ChooseIntersectKernel(0, 50, 0, false),
            IntersectKernel::kGalloping);
}

TEST(IntersectHeuristic, BitmapWinsWhenAvailable) {
  EXPECT_EQ(ChooseIntersectKernel(100, 100, 0, true),
            IntersectKernel::kBitmap);
  EXPECT_EQ(ChooseIntersectKernel(1, 100000, 0, true),
            IntersectKernel::kBitmap);
}

TEST(IntersectHeuristic, DensityTermSelectsBitmapWithoutPrebuiltEncoding) {
  // A balanced dense pair (each list covers >= 1/kBitmapDensityDiv of the
  // universe) used to fall through to linear because no encoding was
  // pre-built — the bench's balanced/adaptive regression. The density term
  // now picks bitmap and lets the caller build the encoding once.
  const size_t universe = 100000;
  const size_t dense = universe / kBitmapDensityDiv;  // exactly at cutoff
  EXPECT_EQ(ChooseIntersectKernel(dense, dense, universe, false),
            IntersectKernel::kBitmap);
  EXPECT_EQ(ChooseIntersectKernel(100, dense, universe, false),
            IntersectKernel::kBitmap);
  // Just under the density cutoff: back to the size-based choice.
  EXPECT_EQ(ChooseIntersectKernel(dense - 1, dense - 1, universe, false),
            IntersectKernel::kLinear);
}

TEST(IntersectHeuristic, DensityTermRespectsTheMinimumUniverse) {
  // Tiny universes never trigger the density term — encoding a bitmap
  // would cost more than the merge it replaces.
  const size_t universe = kBitmapMinUniverse - 1;
  EXPECT_EQ(ChooseIntersectKernel(universe, universe, universe, false),
            IntersectKernel::kLinear);
  EXPECT_EQ(ChooseIntersectKernel(kBitmapMinUniverse, kBitmapMinUniverse,
                                  kBitmapMinUniverse, false),
            IntersectKernel::kBitmap);
}

}  // namespace
}  // namespace solap
