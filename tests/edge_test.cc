// Edge-case and failure-injection tests across the engine surface: empty
// inputs, over-selective filters, capacity pressure, boundary template
// sizes, and export formatting.
#include <gtest/gtest.h>

#include "paper_fixtures.h"
#include "solap/engine/engine.h"
#include "solap/engine/operations.h"
#include "solap/gen/transit.h"

namespace solap {
namespace {

using testing::Fig8Hierarchies;
using testing::Fig8Table;

CuboidSpec TransitXY() {
  CuboidSpec spec;
  spec.seq.cluster_by = {{"card-id", "card-id"}};
  spec.seq.sequence_by = "time";
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {"location", "station"}, {}, ""},
               PatternDim{"Y", {"location", "station"}, {}, ""}};
  return spec;
}

TEST(EdgeTest, EmptyTableYieldsEmptyCuboid) {
  Schema schema({{"time", ValueType::kTimestamp, FieldRole::kDimension},
                 {"card-id", ValueType::kString, FieldRole::kDimension},
                 {"location", ValueType::kString, FieldRole::kDimension}});
  EventTable table(schema);
  auto reg = Fig8Hierarchies();
  SOlapEngine engine(&table, reg.get());
  for (ExecStrategy s :
       {ExecStrategy::kCounterBased, ExecStrategy::kInvertedIndex,
        ExecStrategy::kAuto}) {
    auto r = engine.Execute(TransitXY(), s);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ((*r)->num_cells(), 0u);
  }
}

TEST(EdgeTest, WhereSelectingNothing) {
  auto table = Fig8Table();
  auto reg = Fig8Hierarchies();
  SOlapEngine engine(table.get(), reg.get());
  CuboidSpec spec = TransitXY();
  spec.seq.where =
      Expr::Eq(Expr::Col("card-id"), Expr::Lit(Value::String("nobody")));
  auto r = engine.Execute(spec);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_cells(), 0u);
}

TEST(EdgeTest, TemplateLongerThanEverySequence) {
  auto table = Fig8Table();
  auto reg = Fig8Hierarchies();
  SOlapEngine engine(table.get(), reg.get());
  CuboidSpec spec = TransitXY();
  spec.symbols.assign(10, "X");  // longest sequence has 6 events
  spec.dims = {PatternDim{"X", {"location", "station"}, {}, ""}};
  for (ExecStrategy s :
       {ExecStrategy::kCounterBased, ExecStrategy::kInvertedIndex}) {
    auto r = engine.Execute(spec, s);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ((*r)->num_cells(), 0u);
  }
}

TEST(EdgeTest, SingleEventSequences) {
  // Every sequence has exactly one event; (X) counts them, (X, Y) is empty.
  Schema schema({{"t", ValueType::kInt64, FieldRole::kDimension},
                 {"u", ValueType::kString, FieldRole::kDimension},
                 {"p", ValueType::kString, FieldRole::kDimension}});
  EventTable table(schema);
  for (int i = 0; i < 5; ++i) {
    (void)table.AppendRow({Value::Int64(i),
                           Value::String("u" + std::to_string(i)),
                           Value::String(i % 2 ? "a" : "b")});
  }
  SOlapEngine engine(&table, nullptr);
  CuboidSpec one;
  one.seq.cluster_by = {{"u", "u"}};
  one.seq.sequence_by = "t";
  one.symbols = {"X"};
  one.dims = {PatternDim{"X", {"p", "p"}, {}, ""}};
  auto r1 = engine.Execute(one);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ((*r1)->num_cells(), 2u);
  CuboidSpec two = *ops::Append(one, "Y", {"p", "p"});
  auto r2 = engine.Execute(two);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ((*r2)->num_cells(), 0u);
}

TEST(EdgeTest, GlobalSliceEliminatingEveryGroup) {
  auto table = Fig8Table();
  auto reg = Fig8Hierarchies();
  SOlapEngine engine(table.get(), reg.get());
  CuboidSpec spec = TransitXY();
  spec.seq.group_by = {{"card-id", "card-id"}};
  auto sliced = ops::SliceGlobal(spec, {"card-id", "card-id"}, {"nobody"});
  ASSERT_TRUE(sliced.ok());
  auto r = engine.Execute(*sliced);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_cells(), 0u);
}

TEST(EdgeTest, TinyRepositoryStillAnswersCorrectly) {
  auto table = Fig8Table();
  auto reg = Fig8Hierarchies();
  EngineOptions opts;
  opts.repository_capacity_bytes = 64;  // over budget immediately
  SOlapEngine engine(table.get(), reg.get(), opts);
  auto r1 = engine.Execute(TransitXY());
  ASSERT_TRUE(r1.ok());
  // The LRU keeps the most-recent entry even over budget (it is in use),
  // but never more than that one entry.
  EXPECT_LE(engine.repository().size(), 1u);
  auto other = TransitXY();
  other.restriction = CellRestriction::kAllMatchedGo;
  ASSERT_TRUE(engine.Execute(other).ok());  // evicts the first
  EXPECT_LE(engine.repository().size(), 1u);
  auto r2 = engine.Execute(TransitXY());  // recomputed after eviction
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ((*r1)->num_cells(), (*r2)->num_cells());
  EXPECT_EQ(engine.stats().repository_hits, 0u);
}

TEST(EdgeTest, MaxTemplateLengthBoundary) {
  auto table = Fig8Table();
  auto reg = Fig8Hierarchies();
  SOlapEngine engine(table.get(), reg.get());
  CuboidSpec spec = TransitXY();
  spec.symbols.assign(kMaxTemplatePositions + 1, "X");
  spec.dims = {PatternDim{"X", {"location", "station"}, {}, ""}};
  auto r = engine.Execute(spec, ExecStrategy::kCounterBased);
  EXPECT_FALSE(r.ok());
  spec.symbols.assign(kMaxTemplatePositions, "X");
  auto r2 = engine.Execute(spec, ExecStrategy::kCounterBased);
  EXPECT_TRUE(r2.ok()) << r2.status().ToString();
}

TEST(EdgeTest, IcebergAboveEverything) {
  auto table = Fig8Table();
  auto reg = Fig8Hierarchies();
  SOlapEngine engine(table.get(), reg.get());
  CuboidSpec spec = TransitXY();
  spec.iceberg_min_count = 1'000'000;
  auto r = engine.Execute(spec);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_cells(), 0u);
}

TEST(EdgeTest, CuboidCsvExportQuotesProperly) {
  std::vector<DimDescriptor> dims = {{"X", {"p", "p"}, true}};
  SCuboid c(dims, AggKind::kCount);
  c.Add({0}, 0);
  c.Add({1}, 0);
  c.SetLabel(0, 0, "plain");
  c.SetLabel(0, 1, "with,comma \"and quote\"");
  std::string csv = c.ToCsv();
  EXPECT_NE(csv.find("X:p,COUNT\n"), std::string::npos);
  EXPECT_NE(csv.find("plain,1"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma \"\"and quote\"\"\",1"),
            std::string::npos);
}

TEST(EdgeTest, PerGroupIndexesStayIsolated) {
  // Two groups (fare groups) must not leak sids across their indices.
  TransitParams p;
  p.num_passengers = 120;
  p.num_days = 1;
  TransitData data = GenerateTransit(p);
  SOlapEngine engine(data.table.get(), data.hierarchies.get());
  CuboidSpec spec;
  spec.seq.cluster_by = {{"card-id", "individual"}};
  spec.seq.sequence_by = "time";
  spec.seq.group_by = {{"card-id", "fare-group"}};
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {"location", "station"}, {}, ""},
               PatternDim{"Y", {"location", "station"}, {}, ""}};
  auto ii = engine.Execute(spec, ExecStrategy::kInvertedIndex);
  ASSERT_TRUE(ii.ok()) << ii.status().ToString();
  SOlapEngine cb_engine(data.table.get(), data.hierarchies.get());
  auto cb = cb_engine.Execute(spec, ExecStrategy::kCounterBased);
  ASSERT_TRUE(cb.ok());
  EXPECT_EQ((*ii)->num_cells(), (*cb)->num_cells());
  for (const auto& [key, cell] : (*cb)->cells()) {
    EXPECT_EQ((*ii)->CellAt(key).count, cell.count);
  }
}

TEST(EdgeTest, RawEngineIgnoresFormationClauses) {
  // A raw-group engine serves any spec.seq content from its fixed groups;
  // the canonical key still distinguishes cuboids.
  auto set = testing::Fig8RawGroups();
  SOlapEngine engine(set, nullptr);
  CuboidSpec spec;
  spec.symbols = {"X"};
  spec.dims = {PatternDim{"X", {"symbol", "symbol"}, {}, ""}};
  auto r1 = engine.Execute(spec);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ((*r1)->num_cells(), 5u);  // the five stations of Fig. 8
}

}  // namespace
}  // namespace solap
