// Unit tests for the generalized retry machinery (common/retry.h): the
// deterministic legacy schedule, full-jitter bounds, the deadline-aware
// budget (no sleep into a guaranteed DeadlineExceeded), stop-token
// interruption, and RetryIo source compatibility.
#include "solap/common/retry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace solap {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

TEST(BackoffDelayTest, DeterministicScheduleDoublesAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff = milliseconds(3);
  policy.max_backoff = milliseconds(20);
  policy.full_jitter = false;
  std::mt19937_64 rng(42);
  EXPECT_EQ(BackoffDelay(policy, 1, rng), milliseconds(3));
  EXPECT_EQ(BackoffDelay(policy, 2, rng), milliseconds(6));
  EXPECT_EQ(BackoffDelay(policy, 3, rng), milliseconds(12));
  EXPECT_EQ(BackoffDelay(policy, 4, rng), milliseconds(20));  // capped
  EXPECT_EQ(BackoffDelay(policy, 9, rng), milliseconds(20));  // stays capped
}

TEST(BackoffDelayTest, FullJitterStaysWithinCapAndVaries) {
  RetryPolicy policy;
  policy.initial_backoff = milliseconds(8);
  policy.max_backoff = milliseconds(64);
  policy.full_jitter = true;
  std::mt19937_64 rng(7);
  bool saw_below_cap = false;
  for (int k = 1; k <= 5; ++k) {
    const milliseconds cap(std::min<int64_t>(8LL << (k - 1), 64));
    for (int trial = 0; trial < 200; ++trial) {
      const milliseconds d = BackoffDelay(policy, k, rng);
      EXPECT_GE(d.count(), 0);
      EXPECT_LE(d, cap) << "retry " << k;
      if (d < cap) saw_below_cap = true;
    }
  }
  // U[0, cap] must actually jitter, not degenerate to the cap.
  EXPECT_TRUE(saw_below_cap);
}

TEST(BackoffDelayTest, SeededJitterIsReproducible) {
  RetryPolicy policy;
  policy.initial_backoff = milliseconds(16);
  policy.max_backoff = milliseconds(200);
  policy.full_jitter = true;
  std::mt19937_64 a(12345);
  std::mt19937_64 b(12345);
  for (int k = 1; k <= 6; ++k) {
    EXPECT_EQ(BackoffDelay(policy, k, a), BackoffDelay(policy, k, b));
  }
}

TEST(RetryBudgetTest, FirstAttemptIsFreeAndImmediate) {
  RetryPolicy policy;
  policy.max_attempts = 1;
  RetryBudget budget(policy);
  EXPECT_TRUE(budget.BeforeAttempt());
  EXPECT_EQ(budget.attempts_started(), 1);
  EXPECT_EQ(budget.retries(), 0);
  // max_attempts = 1 means no retrying at all.
  EXPECT_FALSE(budget.BeforeAttempt());
}

TEST(RetryBudgetTest, GrantsExactlyMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = milliseconds(1);
  policy.max_backoff = milliseconds(1);
  RetryBudget budget(policy);
  int granted = 0;
  while (budget.BeforeAttempt()) ++granted;
  EXPECT_EQ(granted, 3);
  EXPECT_EQ(budget.retries(), 2);
}

TEST(RetryBudgetTest, GivesUpInsteadOfSleepingPastDeadline) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff = milliseconds(250);
  policy.max_backoff = milliseconds(250);
  policy.full_jitter = false;
  // The first retry would sleep 250ms; the deadline is 30ms out. The
  // budget must refuse WITHOUT sleeping.
  RetryBudget budget(policy, steady_clock::now() + milliseconds(30));
  EXPECT_TRUE(budget.BeforeAttempt());
  const auto before = steady_clock::now();
  EXPECT_FALSE(budget.BeforeAttempt());
  const auto waited = steady_clock::now() - before;
  EXPECT_LT(waited, milliseconds(100)) << "refused attempt must not sleep";
  EXPECT_EQ(budget.retries(), 0);
}

TEST(RetryBudgetTest, StopTokenAbortsBackoffSleep) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = milliseconds(2000);
  policy.max_backoff = milliseconds(2000);
  policy.full_jitter = false;
  RetryBudget budget(policy);
  StopSource stop;
  StopToken token = stop.token();
  ASSERT_TRUE(budget.BeforeAttempt(&token));
  std::thread trip([&] {
    std::this_thread::sleep_for(milliseconds(30));
    stop.RequestStop();
  });
  const auto before = steady_clock::now();
  EXPECT_FALSE(budget.BeforeAttempt(&token));
  const auto waited = steady_clock::now() - before;
  trip.join();
  EXPECT_LT(waited, milliseconds(1500)) << "sleep must abort on stop";
}

TEST(RetryBudgetTest, TrippedStopRefusesBeforeFirstAttempt) {
  RetryPolicy policy;
  StopSource stop;
  stop.RequestStop();
  StopToken token = stop.token();
  RetryBudget budget(policy);
  EXPECT_FALSE(budget.BeforeAttempt(&token));
  EXPECT_EQ(budget.attempts_started(), 0);
}

TEST(RetryIoTest, RetriesTransientThenSucceeds) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = milliseconds(1);
  policy.max_backoff = milliseconds(2);
  int calls = 0;
  std::atomic<uint64_t> retries{0};
  Status s = RetryIo(
      policy,
      [&] {
        ++calls;
        return calls < 3 ? Status::Internal("flaky") : Status::OK();
      },
      &retries);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries.load(), 2u);
}

TEST(RetryIoTest, NonTransientFailsImmediately) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  int calls = 0;
  Status s = RetryIo(policy, [&] {
    ++calls;
    return Status::NotFound("gone");
  });
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(calls, 1) << "NotFound is a property of the request, not the "
                         "medium — never retried";
}

TEST(RetryIoTest, ExhaustsAttemptsOnPersistentTransient) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = milliseconds(1);
  policy.max_backoff = milliseconds(1);
  int calls = 0;
  Status s = RetryIo(policy, [&] {
    ++calls;
    return Status::Internal("still down");
  });
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(calls, 3);
}

TEST(TransientClassificationTest, OnlyInternalIsTransient) {
  EXPECT_TRUE(IsTransientIoError(Status::Internal("x")));
  EXPECT_FALSE(IsTransientIoError(Status::NotFound("x")));
  EXPECT_FALSE(IsTransientIoError(Status::ParseError("x")));
  EXPECT_FALSE(IsTransientIoError(Status::InvalidArgument("x")));
  EXPECT_FALSE(IsTransientIoError(Status::OK()));
}

}  // namespace
}  // namespace solap
