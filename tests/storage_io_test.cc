// Tests for CSV ingestion/export and binary snapshot persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "paper_fixtures.h"
#include "solap/engine/engine.h"
#include "solap/index/build_index.h"
#include "solap/storage/csv.h"
#include "solap/storage/io.h"

namespace solap {
namespace {

Schema TransitSchema() {
  return Schema({
      {"time", ValueType::kTimestamp, FieldRole::kDimension},
      {"card-id", ValueType::kString, FieldRole::kDimension},
      {"location", ValueType::kString, FieldRole::kDimension},
      {"action", ValueType::kString, FieldRole::kDimension},
      {"amount", ValueType::kDouble, FieldRole::kMeasure},
  });
}

TEST(CsvTest, LoadsHeaderedCsvInAnyColumnOrder) {
  std::istringstream in(
      "location,amount,card-id,action,time\n"
      "Pentagon,0,688,in,2007-10-01T08:30\n"
      "Wheaton,-2.5,688,out,2007-10-01T09:02:30\n");
  auto table = LoadCsv(TransitSchema(), in);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_EQ((*table)->num_rows(), 2u);
  EXPECT_EQ((*table)->Int64At(0, 0), MakeTimestamp(2007, 10, 1, 8, 30));
  EXPECT_EQ((*table)->Int64At(1, 0), MakeTimestamp(2007, 10, 1, 9, 2, 30));
  EXPECT_EQ((*table)->GetValue(0, 2).str(), "Pentagon");
  EXPECT_DOUBLE_EQ((*table)->DoubleAt(1, 4), -2.5);
}

TEST(CsvTest, HeaderlessPositionalAndEpochTimestamps) {
  std::istringstream in("1000,688,Pentagon,in,0\n");
  CsvOptions opts;
  opts.has_header = false;
  auto table = LoadCsv(TransitSchema(), in, opts);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ((*table)->Int64At(0, 0), 1000);
}

TEST(CsvTest, QuotedFieldsAndEmbeddedDelimiters) {
  std::istringstream in(
      "time,card-id,location,action,amount\n"
      "1000,688,\"Foggy, Bottom\",\"say \"\"in\"\"\",1\n");
  auto table = LoadCsv(TransitSchema(), in);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ((*table)->GetValue(0, 2).str(), "Foggy, Bottom");
  EXPECT_EQ((*table)->GetValue(0, 3).str(), "say \"in\"");
}

TEST(CsvTest, DiagnosesBadInput) {
  // Missing schema column in the header.
  std::istringstream h("time,card-id\n1,2\n");
  EXPECT_FALSE(LoadCsv(TransitSchema(), h).ok());
  // Unparseable field, with line/column in the message.
  std::istringstream bad(
      "time,card-id,location,action,amount\n"
      "not-a-date,688,Pentagon,in,0\n");
  auto r = LoadCsv(TransitSchema(), bad);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(r.status().message().find("'time'"), std::string::npos);
  // Short row.
  std::istringstream shortrow(
      "time,card-id,location,action,amount\n1,688\n");
  EXPECT_FALSE(LoadCsv(TransitSchema(), shortrow).ok());
}

TEST(CsvTest, RoundTripPreservesQueries) {
  auto table = testing::Fig8Table();
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(*table, out).ok());
  std::istringstream in(out.str());
  auto loaded = LoadCsv(table->schema(), in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ((*loaded)->num_rows(), table->num_rows());

  // The reloaded table answers the same query with the same counts.
  auto reg = testing::Fig8Hierarchies();
  CuboidSpec spec;
  spec.seq.cluster_by = {{"card-id", "card-id"}};
  spec.seq.sequence_by = "time";
  spec.symbols = {"X", "Y"};
  spec.dims = {PatternDim{"X", {"location", "station"}, {}, ""},
               PatternDim{"Y", {"location", "station"}, {}, ""}};
  SOlapEngine e1(table.get(), reg.get());
  SOlapEngine e2(loaded->get(), reg.get());
  auto r1 = e1.Execute(spec);
  auto r2 = e2.Execute(spec);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ((*r1)->num_cells(), (*r2)->num_cells());
  for (const auto& [key, cell] : (*r1)->cells()) {
    EXPECT_EQ((*r2)->CellAt(key).count, cell.count);
  }
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "solap_snapshot_test.bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(SnapshotTest, TableRoundTripPreservesEverything) {
  auto table = testing::Fig8Table();
  ASSERT_TRUE(SaveTable(*table, path_).ok());
  auto loaded = LoadTable(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ((*loaded)->num_rows(), table->num_rows());
  ASSERT_EQ((*loaded)->schema().num_fields(), table->schema().num_fields());
  for (RowId r = 0; r < table->num_rows(); ++r) {
    for (size_t c = 0; c < table->schema().num_fields(); ++c) {
      EXPECT_TRUE((*loaded)
                      ->GetValue(r, static_cast<int>(c))
                      .Equals(table->GetValue(r, static_cast<int>(c))))
          << "row " << r << " col " << c;
    }
  }
  // Dictionary codes are stable: same code for the same station.
  EXPECT_EQ((*loaded)->CodeAt(1, 2), table->CodeAt(1, 2));
}

TEST_F(SnapshotTest, IndexRoundTrip) {
  auto set = testing::Fig8RawGroups();
  auto reg = testing::Fig8Hierarchies();
  IndexShape shape;
  shape.positions.assign(2, LevelRef{"symbol", "symbol"});
  ScanStats stats;
  auto index = BuildIndex(&set->groups()[0], *set, reg.get(), shape, &stats);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(SaveIndex(**index, path_).ok());
  auto loaded = LoadIndex(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->shape().CanonicalString(),
            (*index)->shape().CanonicalString());
  EXPECT_TRUE((*loaded)->complete());
  EXPECT_EQ((*loaded)->num_lists(), (*index)->num_lists());
  for (const auto& [key, list] : (*index)->lists()) {
    const SidList* got = (*loaded)->Find(key);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, list);
  }
}

TEST_F(SnapshotTest, DetectsCorruption) {
  auto table = testing::Fig8Table();
  ASSERT_TRUE(SaveTable(*table, path_).ok());
  // Flip one byte in the middle.
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(30);
    char c;
    f.seekg(30);
    f.get(c);
    f.seekp(30);
    f.put(static_cast<char>(c ^ 0x5A));
  }
  auto loaded = LoadTable(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos);
}

TEST_F(SnapshotTest, RejectsWrongKindAndGarbage) {
  auto table = testing::Fig8Table();
  ASSERT_TRUE(SaveTable(*table, path_).ok());
  EXPECT_FALSE(LoadIndex(path_).ok());  // table snapshot loaded as index
  EXPECT_FALSE(LoadTable("/nonexistent/file.bin").ok());
  {
    std::ofstream f(path_, std::ios::binary | std::ios::trunc);
    f << "junkjunkjunkjunk";
  }
  EXPECT_FALSE(LoadTable(path_).ok());
}

TEST_F(SnapshotTest, TruncatedSnapshotRejected) {
  auto table = testing::Fig8Table();
  ASSERT_TRUE(SaveTable(*table, path_).ok());
  std::string bytes;
  {
    std::ifstream f(path_, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(f),
                 std::istreambuf_iterator<char>());
  }
  for (size_t keep : {bytes.size() / 2, size_t{10}, size_t{0}}) {
    std::ofstream f(path_, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(keep));
    f.close();
    auto loaded = LoadTable(path_);
    ASSERT_FALSE(loaded.ok()) << "accepted a " << keep << "-byte prefix";
    EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  }
}

TEST_F(SnapshotTest, VersionMismatchRejected) {
  auto table = testing::Fig8Table();
  ASSERT_TRUE(SaveTable(*table, path_).ok());
  std::string bytes;
  {
    std::ifstream f(path_, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(f),
                 std::istreambuf_iterator<char>());
  }
  // Patch the version word (offset 4) to a future version and re-seal the
  // checksum so only the version check can reject it.
  const uint32_t future = 99;
  std::memcpy(bytes.data() + 4, &future, 4);
  const uint32_t crc =
      Crc32(bytes.data(), bytes.size() - 4);
  std::memcpy(bytes.data() + bytes.size() - 4, &crc, 4);
  {
    std::ofstream f(path_, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = LoadTable(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

TEST_F(SnapshotTest, HugeLengthPrefixRejectedWithoutAllocating) {
  // A snapshot whose vector-length word claims ~2^61 elements (chosen so
  // the naive `n * sizeof(T)` size check would overflow and pass) must be
  // rejected by parsing, not by attempting the allocation.
  std::string bytes;
  auto put = [&bytes](const void* p, size_t n) {
    bytes.append(static_cast<const char*>(p), n);
  };
  auto u32 = [&](uint32_t v) { put(&v, 4); };
  auto u64 = [&](uint64_t v) { put(&v, 8); };
  auto u8 = [&](uint8_t v) { put(&v, 1); };
  put("SOLP", 4);
  u32(1);                                              // version
  u8('T');                                             // kind: table
  u32(1);                                              // one field
  u32(1);                                              // name length
  put("v", 1);
  u8(static_cast<uint8_t>(ValueType::kInt64));
  u8(static_cast<uint8_t>(FieldRole::kDimension));
  u64(4);                                              // claimed row count
  u64(0x2000000000000001ull);                          // poisoned vec length
  const uint32_t crc = Crc32(bytes.data(), bytes.size());
  put(&crc, 4);
  {
    std::ofstream f(path_, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = LoadTable(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);

  // Same poison on a string length prefix.
  bytes.resize(bytes.size() - 4);  // drop CRC
  // Rewind past veclen(8) + nrows(8) + role(1) + type(1) + name(1) +
  // namelen(4): back to where the field-name length word starts.
  bytes.resize(bytes.size() - 23);
  u32(0xFFFFFFFFu);  // 4 GiB name
  const uint32_t crc2 = Crc32(bytes.data(), bytes.size());
  put(&crc2, 4);
  {
    std::ofstream f(path_, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded2 = LoadTable(path_);
  ASSERT_FALSE(loaded2.ok());
  EXPECT_EQ(loaded2.status().code(), StatusCode::kParseError);
}

TEST_F(SnapshotTest, SaveLeavesNoTmpResidue) {
  auto table = testing::Fig8Table();
  ASSERT_TRUE(SaveTable(*table, path_).ok());
  ASSERT_TRUE(SaveTable(*table, path_).ok());  // overwrite goes via rename too
  std::ifstream tmp(path_ + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good()) << "atomic save left '" << path_ << ".tmp' behind";
}

TEST_F(SnapshotTest, RetryOverloadsPassThrough) {
  auto table = testing::Fig8Table();
  RetryPolicy retry;
  ASSERT_TRUE(SaveTable(*table, path_, retry).ok());
  auto loaded = LoadTable(path_, retry);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->num_rows(), table->num_rows());
  // NotFound is not transient: a missing file fails once, without retrying.
  const uint64_t retries_before = SnapshotIoRetries();
  EXPECT_FALSE(LoadTable("/nonexistent/file.bin", retry).ok());
  EXPECT_EQ(SnapshotIoRetries(), retries_before);
}

namespace {

// Streambuf that serves `prefix` and then breaks the stream with an
// exception, as a failing disk or pipe would mid-read.
class FlakyBuf : public std::streambuf {
 public:
  explicit FlakyBuf(std::string prefix) : data_(std::move(prefix)) {
    setg(data_.data(), data_.data(), data_.data() + data_.size());
  }

 protected:
  int_type underflow() override { throw std::ios_base::failure("disk died"); }

 private:
  std::string data_;
};

}  // namespace

TEST(CsvTest, MidStreamReadErrorIsInternalNotSilentTruncation) {
  FlakyBuf buf(
      "time,card-id,location,action,amount\n"
      "1000,688,Pentagon,in,0\n"
      "1010,688,Wheaton,out,-2.5\n");
  std::istream in(&buf);
  auto table = LoadCsv(TransitSchema(), in);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInternal);
  EXPECT_NE(table.status().message().find("incomplete"), std::string::npos);
}

TEST(Crc32Test, KnownVector) {
  // The classic check value: CRC-32("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

}  // namespace
}  // namespace solap
