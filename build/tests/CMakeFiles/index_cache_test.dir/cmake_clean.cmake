file(REMOVE_RECURSE
  "CMakeFiles/index_cache_test.dir/index_cache_test.cc.o"
  "CMakeFiles/index_cache_test.dir/index_cache_test.cc.o.d"
  "index_cache_test"
  "index_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
