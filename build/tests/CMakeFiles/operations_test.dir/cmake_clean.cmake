file(REMOVE_RECURSE
  "CMakeFiles/operations_test.dir/operations_test.cc.o"
  "CMakeFiles/operations_test.dir/operations_test.cc.o.d"
  "operations_test"
  "operations_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
