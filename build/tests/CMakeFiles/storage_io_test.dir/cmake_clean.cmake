file(REMOVE_RECURSE
  "CMakeFiles/storage_io_test.dir/storage_io_test.cc.o"
  "CMakeFiles/storage_io_test.dir/storage_io_test.cc.o.d"
  "storage_io_test"
  "storage_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
