# Empty compiler generated dependencies file for storage_io_test.
# This may be replaced when dependencies are built.
