
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solap/common/stats.cc" "src/CMakeFiles/solap.dir/solap/common/stats.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/common/stats.cc.o.d"
  "/root/repo/src/solap/common/status.cc" "src/CMakeFiles/solap.dir/solap/common/status.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/common/status.cc.o.d"
  "/root/repo/src/solap/common/strings.cc" "src/CMakeFiles/solap.dir/solap/common/strings.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/common/strings.cc.o.d"
  "/root/repo/src/solap/cube/cell.cc" "src/CMakeFiles/solap.dir/solap/cube/cell.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/cube/cell.cc.o.d"
  "/root/repo/src/solap/cube/cuboid.cc" "src/CMakeFiles/solap.dir/solap/cube/cuboid.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/cube/cuboid.cc.o.d"
  "/root/repo/src/solap/cube/cuboid_repository.cc" "src/CMakeFiles/solap.dir/solap/cube/cuboid_repository.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/cube/cuboid_repository.cc.o.d"
  "/root/repo/src/solap/cube/cuboid_spec.cc" "src/CMakeFiles/solap.dir/solap/cube/cuboid_spec.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/cube/cuboid_spec.cc.o.d"
  "/root/repo/src/solap/cube/lattice.cc" "src/CMakeFiles/solap.dir/solap/cube/lattice.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/cube/lattice.cc.o.d"
  "/root/repo/src/solap/engine/advisor.cc" "src/CMakeFiles/solap.dir/solap/engine/advisor.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/engine/advisor.cc.o.d"
  "/root/repo/src/solap/engine/counter_based.cc" "src/CMakeFiles/solap.dir/solap/engine/counter_based.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/engine/counter_based.cc.o.d"
  "/root/repo/src/solap/engine/engine.cc" "src/CMakeFiles/solap.dir/solap/engine/engine.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/engine/engine.cc.o.d"
  "/root/repo/src/solap/engine/incremental.cc" "src/CMakeFiles/solap.dir/solap/engine/incremental.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/engine/incremental.cc.o.d"
  "/root/repo/src/solap/engine/online_aggregation.cc" "src/CMakeFiles/solap.dir/solap/engine/online_aggregation.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/engine/online_aggregation.cc.o.d"
  "/root/repo/src/solap/engine/operations.cc" "src/CMakeFiles/solap.dir/solap/engine/operations.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/engine/operations.cc.o.d"
  "/root/repo/src/solap/engine/optimizer.cc" "src/CMakeFiles/solap.dir/solap/engine/optimizer.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/engine/optimizer.cc.o.d"
  "/root/repo/src/solap/engine/query_indices.cc" "src/CMakeFiles/solap.dir/solap/engine/query_indices.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/engine/query_indices.cc.o.d"
  "/root/repo/src/solap/engine/regex_exec.cc" "src/CMakeFiles/solap.dir/solap/engine/regex_exec.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/engine/regex_exec.cc.o.d"
  "/root/repo/src/solap/expr/expr.cc" "src/CMakeFiles/solap.dir/solap/expr/expr.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/expr/expr.cc.o.d"
  "/root/repo/src/solap/gen/clickstream.cc" "src/CMakeFiles/solap.dir/solap/gen/clickstream.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/gen/clickstream.cc.o.d"
  "/root/repo/src/solap/gen/synthetic.cc" "src/CMakeFiles/solap.dir/solap/gen/synthetic.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/gen/synthetic.cc.o.d"
  "/root/repo/src/solap/gen/transit.cc" "src/CMakeFiles/solap.dir/solap/gen/transit.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/gen/transit.cc.o.d"
  "/root/repo/src/solap/gen/zipf.cc" "src/CMakeFiles/solap.dir/solap/gen/zipf.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/gen/zipf.cc.o.d"
  "/root/repo/src/solap/hierarchy/concept_hierarchy.cc" "src/CMakeFiles/solap.dir/solap/hierarchy/concept_hierarchy.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/hierarchy/concept_hierarchy.cc.o.d"
  "/root/repo/src/solap/index/bitmap.cc" "src/CMakeFiles/solap.dir/solap/index/bitmap.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/index/bitmap.cc.o.d"
  "/root/repo/src/solap/index/bitmap_index.cc" "src/CMakeFiles/solap.dir/solap/index/bitmap_index.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/index/bitmap_index.cc.o.d"
  "/root/repo/src/solap/index/build_index.cc" "src/CMakeFiles/solap.dir/solap/index/build_index.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/index/build_index.cc.o.d"
  "/root/repo/src/solap/index/index_cache.cc" "src/CMakeFiles/solap.dir/solap/index/index_cache.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/index/index_cache.cc.o.d"
  "/root/repo/src/solap/index/index_ops.cc" "src/CMakeFiles/solap.dir/solap/index/index_ops.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/index/index_ops.cc.o.d"
  "/root/repo/src/solap/index/inverted_index.cc" "src/CMakeFiles/solap.dir/solap/index/inverted_index.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/index/inverted_index.cc.o.d"
  "/root/repo/src/solap/parser/lexer.cc" "src/CMakeFiles/solap.dir/solap/parser/lexer.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/parser/lexer.cc.o.d"
  "/root/repo/src/solap/parser/parser.cc" "src/CMakeFiles/solap.dir/solap/parser/parser.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/parser/parser.cc.o.d"
  "/root/repo/src/solap/pattern/matcher.cc" "src/CMakeFiles/solap.dir/solap/pattern/matcher.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/pattern/matcher.cc.o.d"
  "/root/repo/src/solap/pattern/pattern_template.cc" "src/CMakeFiles/solap.dir/solap/pattern/pattern_template.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/pattern/pattern_template.cc.o.d"
  "/root/repo/src/solap/pattern/regex.cc" "src/CMakeFiles/solap.dir/solap/pattern/regex.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/pattern/regex.cc.o.d"
  "/root/repo/src/solap/seq/dimension.cc" "src/CMakeFiles/solap.dir/solap/seq/dimension.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/seq/dimension.cc.o.d"
  "/root/repo/src/solap/seq/sequence_cache.cc" "src/CMakeFiles/solap.dir/solap/seq/sequence_cache.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/seq/sequence_cache.cc.o.d"
  "/root/repo/src/solap/seq/sequence_group.cc" "src/CMakeFiles/solap.dir/solap/seq/sequence_group.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/seq/sequence_group.cc.o.d"
  "/root/repo/src/solap/seq/sequence_query_engine.cc" "src/CMakeFiles/solap.dir/solap/seq/sequence_query_engine.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/seq/sequence_query_engine.cc.o.d"
  "/root/repo/src/solap/storage/csv.cc" "src/CMakeFiles/solap.dir/solap/storage/csv.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/storage/csv.cc.o.d"
  "/root/repo/src/solap/storage/dictionary.cc" "src/CMakeFiles/solap.dir/solap/storage/dictionary.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/storage/dictionary.cc.o.d"
  "/root/repo/src/solap/storage/event_table.cc" "src/CMakeFiles/solap.dir/solap/storage/event_table.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/storage/event_table.cc.o.d"
  "/root/repo/src/solap/storage/io.cc" "src/CMakeFiles/solap.dir/solap/storage/io.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/storage/io.cc.o.d"
  "/root/repo/src/solap/storage/schema.cc" "src/CMakeFiles/solap.dir/solap/storage/schema.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/storage/schema.cc.o.d"
  "/root/repo/src/solap/storage/value.cc" "src/CMakeFiles/solap.dir/solap/storage/value.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/storage/value.cc.o.d"
  "/root/repo/src/solap/tools/shell.cc" "src/CMakeFiles/solap.dir/solap/tools/shell.cc.o" "gcc" "src/CMakeFiles/solap.dir/solap/tools/shell.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
