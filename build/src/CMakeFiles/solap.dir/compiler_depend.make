# Empty compiler generated dependencies file for solap.
# This may be replaced when dependencies are built.
