file(REMOVE_RECURSE
  "libsolap.a"
)
