file(REMOVE_RECURSE
  "CMakeFiles/bench_queryset_a.dir/bench_queryset_a.cc.o"
  "CMakeFiles/bench_queryset_a.dir/bench_queryset_a.cc.o.d"
  "bench_queryset_a"
  "bench_queryset_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queryset_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
