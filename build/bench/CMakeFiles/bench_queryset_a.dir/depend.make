# Empty dependencies file for bench_queryset_a.
# This may be replaced when dependencies are built.
