# Empty compiler generated dependencies file for bench_vary_domain.
# This may be replaced when dependencies are built.
