file(REMOVE_RECURSE
  "CMakeFiles/bench_vary_domain.dir/bench_vary_domain.cc.o"
  "CMakeFiles/bench_vary_domain.dir/bench_vary_domain.cc.o.d"
  "bench_vary_domain"
  "bench_vary_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vary_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
