file(REMOVE_RECURSE
  "CMakeFiles/bench_queryset_b.dir/bench_queryset_b.cc.o"
  "CMakeFiles/bench_queryset_b.dir/bench_queryset_b.cc.o.d"
  "bench_queryset_b"
  "bench_queryset_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queryset_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
