# Empty compiler generated dependencies file for bench_queryset_b.
# This may be replaced when dependencies are built.
