file(REMOVE_RECURSE
  "CMakeFiles/bench_vary_skew.dir/bench_vary_skew.cc.o"
  "CMakeFiles/bench_vary_skew.dir/bench_vary_skew.cc.o.d"
  "bench_vary_skew"
  "bench_vary_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vary_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
