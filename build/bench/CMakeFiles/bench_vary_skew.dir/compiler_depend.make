# Empty compiler generated dependencies file for bench_vary_skew.
# This may be replaced when dependencies are built.
