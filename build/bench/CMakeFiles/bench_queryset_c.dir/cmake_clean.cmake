file(REMOVE_RECURSE
  "CMakeFiles/bench_queryset_c.dir/bench_queryset_c.cc.o"
  "CMakeFiles/bench_queryset_c.dir/bench_queryset_c.cc.o.d"
  "bench_queryset_c"
  "bench_queryset_c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queryset_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
