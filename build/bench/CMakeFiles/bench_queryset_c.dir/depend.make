# Empty dependencies file for bench_queryset_c.
# This may be replaced when dependencies are built.
