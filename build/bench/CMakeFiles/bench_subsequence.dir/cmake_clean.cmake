file(REMOVE_RECURSE
  "CMakeFiles/bench_subsequence.dir/bench_subsequence.cc.o"
  "CMakeFiles/bench_subsequence.dir/bench_subsequence.cc.o.d"
  "bench_subsequence"
  "bench_subsequence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subsequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
