# Empty compiler generated dependencies file for bench_subsequence.
# This may be replaced when dependencies are built.
