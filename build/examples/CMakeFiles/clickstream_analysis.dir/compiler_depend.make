# Empty compiler generated dependencies file for clickstream_analysis.
# This may be replaced when dependencies are built.
