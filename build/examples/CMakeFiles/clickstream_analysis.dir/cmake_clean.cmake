file(REMOVE_RECURSE
  "CMakeFiles/clickstream_analysis.dir/clickstream_analysis.cpp.o"
  "CMakeFiles/clickstream_analysis.dir/clickstream_analysis.cpp.o.d"
  "clickstream_analysis"
  "clickstream_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clickstream_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
