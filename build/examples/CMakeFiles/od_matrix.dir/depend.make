# Empty dependencies file for od_matrix.
# This may be replaced when dependencies are built.
