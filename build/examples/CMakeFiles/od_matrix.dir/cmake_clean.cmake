file(REMOVE_RECURSE
  "CMakeFiles/od_matrix.dir/od_matrix.cpp.o"
  "CMakeFiles/od_matrix.dir/od_matrix.cpp.o.d"
  "od_matrix"
  "od_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/od_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
