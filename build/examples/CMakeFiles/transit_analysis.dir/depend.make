# Empty dependencies file for transit_analysis.
# This may be replaced when dependencies are built.
