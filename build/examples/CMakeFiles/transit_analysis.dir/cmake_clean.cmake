file(REMOVE_RECURSE
  "CMakeFiles/transit_analysis.dir/transit_analysis.cpp.o"
  "CMakeFiles/transit_analysis.dir/transit_analysis.cpp.o.d"
  "transit_analysis"
  "transit_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transit_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
