file(REMOVE_RECURSE
  "CMakeFiles/solap_shell.dir/solap_shell.cc.o"
  "CMakeFiles/solap_shell.dir/solap_shell.cc.o.d"
  "solap_shell"
  "solap_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solap_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
