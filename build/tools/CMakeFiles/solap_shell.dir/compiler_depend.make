# Empty compiler generated dependencies file for solap_shell.
# This may be replaced when dependencies are built.
